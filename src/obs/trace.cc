#include "obs/trace.hh"

#include <algorithm>
#include <iomanip>
#include <locale>
#include <set>
#include <sstream>
#include <string>
#include <utility>

namespace abndp
{
namespace obs
{

namespace
{

/** Display name of one event kind. */
const char *
eventName(TraceEvent kind)
{
    switch (kind) {
      case TraceEvent::TaskRun: return "task";
      case TraceEvent::TaskForward: return "forward";
      case TraceEvent::TaskSteal: return "steal";
      case TraceEvent::TravellerHit: return "hit";
      case TraceEvent::TravellerMiss: return "miss";
      case TraceEvent::CampExchange: return "exchange";
      case TraceEvent::NocTransfer: return "pkt";
      case TraceEvent::EpochBegin: return "epoch";
      case TraceEvent::NumKinds: break;
    }
    return "?";
}

/** Chrome trace category of one event kind. */
const char *
eventCategory(TraceEvent kind)
{
    switch (kind) {
      case TraceEvent::TaskRun: return "task";
      case TraceEvent::TaskForward:
      case TraceEvent::TaskSteal:
      case TraceEvent::CampExchange: return "sched";
      case TraceEvent::TravellerHit:
      case TraceEvent::TravellerMiss: return "cache";
      case TraceEvent::NocTransfer: return "net";
      case TraceEvent::EpochBegin: return "sim";
      case TraceEvent::NumKinds: break;
    }
    return "?";
}

/** Chrome pid of a track: 1 = system, units from 2. */
std::uint64_t
pidOf(UnitId unit)
{
    return unit == Tracer::systemUnit ? 1ull
                                      : static_cast<std::uint64_t>(unit) + 2;
}

/** Thread (lane) display name within a unit track. */
std::string
laneName(UnitId unit, std::uint16_t lane)
{
    if (unit == Tracer::systemUnit)
        return lane == 0 ? "epochs" : "exchanges";
    if (lane == Tracer::laneSched)
        return "sched";
    if (lane == Tracer::laneCache)
        return "traveller";
    if (lane == Tracer::laneNet)
        return "noc";
    return "core" + std::to_string(lane);
}

/** Ticks (ps) to the trace format's microseconds, exactly. */
void
putTs(std::ostream &os, Tick ticks)
{
    // Fixed six decimals: 1 ps = 1e-6 us, so every tick is exact and
    // the output is byte-stable.
    os << ticks / 1000000 << '.' << std::setw(6) << std::setfill('0')
       << ticks % 1000000 << std::setfill(' ');
}

} // namespace

Tracer::Tracer(bool enable, std::size_t capacity) : on(enable)
{
    if (on)
        buf.resize(capacity > 0 ? capacity : 1);
}

std::uint64_t
Tracer::count(TraceEvent kind) const
{
    std::uint64_t c = 0;
    for (std::size_t i = 0; i < n; ++i)
        if (buf[i].kind == kind)
            ++c;
    return c;
}

std::vector<std::size_t>
Tracer::orderedIndices() const
{
    std::vector<std::size_t> idx(n);
    // Oldest record first: when the ring wrapped, the oldest slot is
    // head (the next one to be overwritten).
    std::size_t start = n < buf.size() ? 0 : head;
    for (std::size_t i = 0; i < n; ++i)
        idx[i] = (start + i) % (buf.empty() ? 1 : buf.size());
    // Events are recorded in simulation order but some carry timestamps
    // ahead of the recording instant (chained network transfers), so
    // stable-sort by ts for monotone per-track timelines.
    std::stable_sort(idx.begin(), idx.end(),
                     [this](std::size_t a, std::size_t b) {
                         return buf[a].ts < buf[b].ts;
                     });
    return idx;
}

void
Tracer::exportChromeJson(std::ostream &os) const
{
    os.imbue(std::locale::classic());
    std::vector<std::size_t> idx = orderedIndices();

    // Collect the used tracks (ordered, hence deterministic).
    std::set<std::pair<std::uint64_t, std::uint16_t>> tracks;
    for (std::size_t i : idx)
        tracks.emplace(pidOf(buf[i].unit), buf[i].lane);

    os << "{\"traceEvents\":[";
    bool first = true;
    auto sep = [&] {
        if (!first)
            os << ",";
        first = false;
        os << "\n";
    };

    // Track metadata: name every used process once, then its threads.
    std::uint64_t lastPid = ~0ull;
    for (const auto &[pid, lane] : tracks) {
        if (pid != lastPid) {
            sep();
            os << "{\"ph\":\"M\",\"pid\":" << pid
               << ",\"name\":\"process_name\",\"args\":{\"name\":\"";
            if (pid == 1)
                os << "system";
            else
                os << "unit" << pid - 2;
            os << "\"}}";
            lastPid = pid;
        }
        UnitId unit = pid == 1 ? systemUnit
                               : static_cast<UnitId>(pid - 2);
        sep();
        os << "{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << lane + 1
           << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
           << laneName(unit, lane) << "\"}}";
    }

    for (std::size_t i : idx) {
        const TraceRecord &r = buf[i];
        sep();
        bool slice = r.kind == TraceEvent::TaskRun;
        os << "{\"ph\":\"" << (slice ? "X" : "i") << "\",\"pid\":"
           << pidOf(r.unit) << ",\"tid\":" << r.lane + 1 << ",\"ts\":";
        putTs(os, r.ts);
        if (slice) {
            os << ",\"dur\":";
            putTs(os, r.dur);
        } else {
            os << ",\"s\":\"t\"";
        }
        os << ",\"name\":\"" << eventName(r.kind) << "\",\"cat\":\""
           << eventCategory(r.kind) << "\"";
        switch (r.kind) {
          case TraceEvent::TaskRun:
            os << ",\"args\":{\"func\":" << r.arg << "}";
            break;
          case TraceEvent::TaskForward:
            os << ",\"args\":{\"dst\":" << r.arg << "}";
            break;
          case TraceEvent::TaskSteal:
            os << ",\"args\":{\"victim\":" << (r.arg >> 32)
               << ",\"tasks\":" << (r.arg & 0xffffffffull) << "}";
            break;
          case TraceEvent::NocTransfer:
            os << ",\"args\":{\"dst\":" << (r.arg >> 32) << ",\"bytes\":"
               << (r.arg & 0xffffffffull) << "}";
            break;
          case TraceEvent::EpochBegin:
            os << ",\"args\":{\"epoch\":" << r.arg << "}";
            break;
          default:
            break;
        }
        os << "}";
    }

    os << "\n],\n\"displayTimeUnit\":\"ns\",\n\"otherData\":{"
       << "\"droppedEvents\":" << dropped() << ",\"tickPerUs\":1000000"
       << "}}\n";
}

} // namespace obs
} // namespace abndp
