#include "obs/stats_registry.hh"

#include <iomanip>
#include <locale>
#include <sstream>

#include "common/logging.hh"

namespace abndp
{
namespace obs
{

std::string
formatStatValue(double v, bool integer)
{
    std::ostringstream oss;
    oss.imbue(std::locale::classic());
    if (integer) {
        // Counters are uint64-valued; doubles represent every count the
        // simulator can reach in practice exactly up to 2^53.
        oss << static_cast<std::uint64_t>(v);
    } else {
        oss << std::fixed << std::setprecision(6) << v;
    }
    return oss.str();
}

StatNode &
StatNode::child(const std::string &name)
{
    for (auto &k : kids)
        if (k->name_ == name)
            return *k;
    kids.push_back(std::unique_ptr<StatNode>(new StatNode));
    kids.back()->name_ = name;
    return *kids.back();
}

void
StatNode::addCounter(const std::string &name, const stats::Counter *c)
{
    addValue(name, [c] { return static_cast<double>(c->value()); },
             StatKind::Counter, /*integer=*/true);
}

void
StatNode::addScalar(const std::string &name, const stats::Scalar *s)
{
    addValue(name, [s] { return s->value(); }, StatKind::Gauge,
             /*integer=*/false);
}

void
StatNode::addDistribution(const std::string &name,
                          const stats::Distribution *d)
{
    addValue(name + ".samples",
             [d] { return static_cast<double>(d->samples()); },
             StatKind::Counter, /*integer=*/true);
    addValue(name + ".mean", [d] { return d->mean(); }, StatKind::Gauge,
             /*integer=*/false);
    addValue(name + ".min", [d] { return d->min(); }, StatKind::Gauge,
             /*integer=*/false);
    addValue(name + ".max", [d] { return d->max(); }, StatKind::Gauge,
             /*integer=*/false);
    addValue(name + ".stddev", [d] { return d->stddev(); }, StatKind::Gauge,
             /*integer=*/false);
}

void
StatNode::addHistogram(const std::string &name, const stats::Histogram *h)
{
    abndp_assert(!h->buckets().empty(),
                 "histogram must be initialized before registration");
    for (std::size_t i = 0; i < h->buckets().size(); ++i) {
        addValue(name + ".bucket" + std::to_string(i),
                 [h, i] { return static_cast<double>(h->buckets()[i]); },
                 StatKind::Counter, /*integer=*/true);
    }
    addValue(name + ".underflow",
             [h] { return static_cast<double>(h->underflow()); },
             StatKind::Counter, /*integer=*/true);
    addValue(name + ".overflow",
             [h] { return static_cast<double>(h->overflow()); },
             StatKind::Counter, /*integer=*/true);
}

void
StatNode::addFormula(const std::string &name, std::function<double()> fn)
{
    addValue(name, std::move(fn), StatKind::Gauge, /*integer=*/false);
}

void
StatNode::addValue(const std::string &name, std::function<double()> fn,
                   StatKind kind, bool integer)
{
    for (const auto &e : entries)
        abndp_assert(e.name != name, "duplicate stat ", name);
    entries.push_back(Entry{name, std::move(fn), kind, integer});
}

void
StatNode::addVector(const std::string &name,
                    const std::vector<std::string> &elems,
                    std::function<double(std::size_t)> get, StatKind kind,
                    bool integer)
{
    for (std::size_t i = 0; i < elems.size(); ++i)
        addValue(name + "." + elems[i],
                 [get, i] { return get(i); }, kind, integer);
}

void
StatNode::flatten(const std::string &prefix,
                  std::vector<const Entry *> &out,
                  std::vector<std::string> &names) const
{
    std::string base = prefix.empty()
        ? name_
        : (name_.empty() ? prefix : prefix + "." + name_);
    for (const auto &e : entries) {
        out.push_back(&e);
        names.push_back(base.empty() ? e.name : base + "." + e.name);
    }
    for (const auto &k : kids)
        k->flatten(base, out, names);
}

std::size_t
StatsRegistry::size() const
{
    std::vector<const StatNode::Entry *> flat;
    std::vector<std::string> names;
    collect(flat, names);
    return flat.size();
}

void
StatsRegistry::collect(std::vector<const StatNode::Entry *> &out,
                       std::vector<std::string> &names) const
{
    rootNode.flatten("", out, names);
}

void
StatsRegistry::dump(std::ostream &os) const
{
    std::vector<const StatNode::Entry *> flat;
    std::vector<std::string> names;
    collect(flat, names);
    for (std::size_t i = 0; i < flat.size(); ++i) {
        os << names[i];
        for (std::size_t pad = names[i].size(); pad < 44; ++pad)
            os << ' ';
        os << ' ' << formatStatValue(flat[i]->get(), flat[i]->integer)
           << "\n";
    }
}

void
StatsRegistry::beginInterval()
{
    std::vector<const StatNode::Entry *> flat;
    std::vector<std::string> names;
    collect(flat, names);
    intervalBase.resize(flat.size());
    for (std::size_t i = 0; i < flat.size(); ++i)
        intervalBase[i] = flat[i]->get();
}

void
StatsRegistry::dumpInterval(std::ostream &os, const std::string &header)
{
    std::vector<const StatNode::Entry *> flat;
    std::vector<std::string> names;
    collect(flat, names);
    abndp_assert(flat.size() == intervalBase.size(),
                 "stats registered after beginInterval()");
    os << header << "\n";
    for (std::size_t i = 0; i < flat.size(); ++i) {
        double cur = flat[i]->get();
        double v = flat[i]->kind == StatKind::Counter
            ? cur - intervalBase[i]
            : cur;
        os << names[i];
        for (std::size_t pad = names[i].size(); pad < 44; ++pad)
            os << ' ';
        os << ' ' << formatStatValue(v, flat[i]->integer) << "\n";
        intervalBase[i] = cur;
    }
}

} // namespace obs
} // namespace abndp
