/**
 * @file
 * Zero-overhead-when-off event tracer with Chrome trace-event JSON
 * export (viewable in Perfetto / chrome://tracing).
 *
 * Hot paths record fixed-size POD events into a preallocated ring
 * buffer behind an inline enabled() guard, so disabled runs execute one
 * predictable untaken branch per site and stay byte-identical to an
 * uninstrumented build. Recording is purely observational: it never
 * feeds back into simulation timing or any seeded Rng stream, so
 * tracing on vs. off leaves every simulated metric unchanged
 * (tests/test_trace_determinism.cc enforces this).
 *
 * Track mapping in the exported JSON: each NDP unit is one Chrome
 * "process" (pid = unit + 2) whose "threads" are the unit's cores plus
 * dedicated scheduler / Traveller-cache / NoC lanes; system-wide events
 * (epoch barriers, CAMP workload exchanges) live on pid 1 ("system").
 * Timestamps are simulated ticks (1 tick = 1 ps) converted to the
 * format's microseconds, so one JSON ts unit step is exactly 1e-6.
 */

#ifndef ABNDP_OBS_TRACE_HH
#define ABNDP_OBS_TRACE_HH

#include <cstdint>
#include <ostream>
#include <vector>

#include "common/types.hh"

namespace abndp
{
namespace obs
{

/** Kinds of traced events. */
enum class TraceEvent : std::uint8_t
{
    /** One task executing on a core (duration slice). */
    TaskRun,
    /** Scheduling-window forward of a task descriptor (arg = dst). */
    TaskForward,
    /** Successful steal (arg = victim << 32 | tasks stolen). */
    TaskSteal,
    /** Traveller Cache hit at a camp location. */
    TravellerHit,
    /** Traveller Cache miss at a camp location. */
    TravellerMiss,
    /** Periodic CAMP workload-information exchange. */
    CampExchange,
    /** One NoC packet (arg = dst << 32 | bytes). */
    NocTransfer,
    /** Bulk-synchronous epoch start (arg = epoch number). */
    EpochBegin,
    NumKinds,
};

/** One fixed-size trace record (ring-buffer slot). */
struct TraceRecord
{
    Tick ts = 0;
    Tick dur = 0;
    std::uint64_t arg = 0;
    UnitId unit = 0;
    std::uint16_t lane = 0;
    TraceEvent kind = TraceEvent::TaskRun;
};

/** Ring-buffer event recorder with Chrome trace-event JSON export. */
class Tracer
{
  public:
    /** Per-unit lanes above the core lanes (tid = lane + 1). */
    static constexpr std::uint16_t laneSched = 64;
    static constexpr std::uint16_t laneCache = 65;
    static constexpr std::uint16_t laneNet = 66;
    /** Pseudo-unit of system-wide tracks (epochs lane 0, exchanges 1). */
    static constexpr UnitId systemUnit = invalidUnit;

    /**
     * @param enable turn recording on (the buffer is only allocated
     *               when enabled; a disabled tracer costs one bool)
     * @param capacity ring-buffer capacity in events; once full, the
     *                 oldest events are overwritten (dropped() counts)
     */
    Tracer(bool enable, std::size_t capacity);

    /** Inline guard for every instrumentation site. */
    bool enabled() const { return on; }

    /**
     * Record one event. Call sites guard with enabled() so disabled
     * runs never enter; the internal check only keeps a stray
     * unguarded call from touching the unallocated buffer.
     */
    void
    record(TraceEvent kind, UnitId unit, std::uint16_t lane, Tick ts,
           Tick dur = 0, std::uint64_t arg = 0)
    {
        if (!on)
            return;
        TraceRecord &r = buf[head];
        r.ts = ts;
        r.dur = dur;
        r.arg = arg;
        r.unit = unit;
        r.lane = lane;
        r.kind = kind;
        if (++head == buf.size())
            head = 0;
        if (n < buf.size())
            ++n;
        ++nRecorded;
    }

    /** Events currently held in the buffer. */
    std::size_t size() const { return n; }

    /** Total events ever recorded (including overwritten ones). */
    std::uint64_t recorded() const { return nRecorded; }

    /** Events lost to ring-buffer wrap-around. */
    std::uint64_t dropped() const { return nRecorded - n; }

    /** In-buffer count of one event kind (test reconciliation). */
    std::uint64_t count(TraceEvent kind) const;

    /**
     * Export the buffered events as Chrome trace-event JSON: metadata
     * naming every used track, then the events sorted by timestamp
     * (stable, so the output is bit-deterministic for a deterministic
     * simulation).
     */
    void exportChromeJson(std::ostream &os) const;

  private:
    /** Buffer indices oldest-to-newest. */
    std::vector<std::size_t> orderedIndices() const;

    bool on;
    std::vector<TraceRecord> buf;
    std::size_t head = 0;
    std::size_t n = 0;
    std::uint64_t nRecorded = 0;
};

} // namespace obs
} // namespace abndp

#endif // ABNDP_OBS_TRACE_HH
