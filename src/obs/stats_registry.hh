/**
 * @file
 * Hierarchical statistics registry in the spirit of gem5's Stats
 * package.
 *
 * Every simulated component registers its stats — scalars/counters,
 * vectors, distributions, histograms, and derived formulas — under a
 * named node of a per-system tree. The registry flattens the tree into
 * deterministic "group.sub.stat value" lines for the full end-of-run
 * dump and for per-epoch interval dumps (counters print as deltas since
 * the previous interval, gauges as current values).
 *
 * All formatting goes through formatStatValue(): fixed-point, classic-
 * locale output so dumps are bit-stable across platforms and build
 * types, which is what the golden-metrics regression suite compares
 * against (tests/test_golden_metrics.cc).
 */

#ifndef ABNDP_OBS_STATS_REGISTRY_HH
#define ABNDP_OBS_STATS_REGISTRY_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "common/stats.hh"

namespace abndp
{
namespace obs
{

/**
 * Semantics of one flattened stat value:
 *  - Counter: monotonically non-decreasing over a run; interval dumps
 *    print the delta since the previous interval.
 *  - Gauge: instantaneous or derived value; interval dumps print it
 *    verbatim.
 */
enum class StatKind
{
    Counter,
    Gauge,
};

/**
 * Format one stat value for a dump line: integers in plain decimal,
 * floating-point values with explicit fixed six-digit precision in the
 * classic "C" locale, so that a dump is byte-stable regardless of
 * platform, locale, or the ambient stream state.
 */
std::string formatStatValue(double v, bool integer);

/**
 * One node (group) in the stats hierarchy. Nodes own their child nodes;
 * registered stats are referenced by pointer or captured getter and
 * must outlive the registry (they live in the owning component, as in
 * gem5).
 */
class StatNode
{
  public:
    /** Get or create the child group @p name. */
    StatNode &child(const std::string &name);

    /** Register a monotone event counter. */
    void addCounter(const std::string &name, const stats::Counter *c);

    /** Register a floating-point accumulator as a gauge. */
    void addScalar(const std::string &name, const stats::Scalar *s);

    /**
     * Register a min/max/mean/stddev distribution; flattens into
     * .samples (counter) plus .mean/.min/.max/.stddev gauges.
     */
    void addDistribution(const std::string &name,
                         const stats::Distribution *d);

    /**
     * Register a fixed-bucket histogram; flattens into one counter per
     * bucket plus .underflow/.overflow. The histogram must already be
     * initialized (the bucket count is fixed at registration).
     */
    void addHistogram(const std::string &name, const stats::Histogram *h);

    /** Register a derived value computed at dump time (gem5 Formula). */
    void addFormula(const std::string &name, std::function<double()> fn);

    /** Register an arbitrary getter with explicit kind/format. */
    void addValue(const std::string &name, std::function<double()> fn,
                  StatKind kind, bool integer);

    /**
     * Register a vector stat: one value per element, flattened as
     * name.elem. @p get receives the element index.
     */
    void addVector(const std::string &name,
                   const std::vector<std::string> &elems,
                   std::function<double(std::size_t)> get, StatKind kind,
                   bool integer);

  private:
    friend class StatsRegistry;

    struct Entry
    {
        std::string name;
        std::function<double()> get;
        StatKind kind;
        bool integer;
    };

    /** Append "prefix.stat value"-ready flat entries, children last. */
    void flatten(const std::string &prefix,
                 std::vector<const Entry *> &out,
                 std::vector<std::string> &names) const;

    std::string name_;
    std::vector<Entry> entries;
    std::vector<std::unique_ptr<StatNode>> kids;
};

/**
 * The per-system stats registry: the root of one StatNode tree plus
 * dump/interval machinery. One instance per simulated system; instances
 * share nothing, so grid cells stay thread-independent.
 */
class StatsRegistry
{
  public:
    StatsRegistry() = default;

    StatNode &root() { return rootNode; }

    /** Number of flattened stat values currently registered. */
    std::size_t size() const;

    /**
     * Print every stat as "name value" lines in registration order
     * (deterministic; excludes anything wall-clock-derived by
     * construction — nothing nondeterministic may be registered).
     */
    void dump(std::ostream &os) const;

    /** Snapshot current values as the base of the next interval. */
    void beginInterval();

    /**
     * Print one interval: @p header line first, then counters as deltas
     * since the previous beginInterval()/dumpInterval() and gauges as
     * current values. Re-snapshots afterwards.
     */
    void dumpInterval(std::ostream &os, const std::string &header);

  private:
    /** Collect flat entries and full names (registration order). */
    void collect(std::vector<const StatNode::Entry *> &out,
                 std::vector<std::string> &names) const;

    StatNode rootNode;
    std::vector<double> intervalBase;
};

} // namespace obs
} // namespace abndp

#endif // ABNDP_OBS_STATS_REGISTRY_HH
