/**
 * @file
 * Hierarchical NDP topology: an inter-stack 2D mesh of memory stacks,
 * each containing a crossbar-connected set of NDP units.
 *
 * Unit numbering follows the paper's camp-grouping scheme (Section 4.2):
 * units are numbered consecutively first within each stack, then within
 * each localized group of stacks, and finally across groups. Groups are
 * rectangular tiles of the stack mesh so that every group is spatially
 * localized (Figure 5).
 */

#ifndef ABNDP_NET_TOPOLOGY_HH
#define ABNDP_NET_TOPOLOGY_HH

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/config.hh"
#include "common/types.hh"

namespace abndp
{

/** Static topology queries: coordinates, groups, hop distances. */
class Topology
{
  public:
    explicit Topology(const SystemConfig &cfg);

    std::uint32_t numUnits() const { return nUnits; }
    std::uint32_t numStacks() const { return nStacks; }
    std::uint32_t numGroups() const { return nGroups; }
    std::uint32_t unitsPerGroup() const { return nUnits / nGroups; }
    std::uint32_t unitsPerStack() const { return nUnitsPerStack; }

    /** Stack that hosts a unit. */
    StackId stackOf(UnitId u) const { return unitStack[u]; }

    /** Camp group that a unit belongs to. */
    GroupId groupOf(UnitId u) const { return unitGroup[u]; }

    /** Mesh coordinates of a stack. */
    std::pair<std::uint32_t, std::uint32_t>
    stackCoord(StackId s) const
    {
        return {stackX[s], stackY[s]};
    }

    /** Global unit id of the idx-th unit inside group g. */
    UnitId
    unitInGroup(GroupId g, std::uint32_t idx) const
    {
        return groupUnits[g][idx];
    }

    /** All units in group g, in numbering order. */
    const std::vector<UnitId> &unitsOfGroup(GroupId g) const
    {
        return groupUnits[g];
    }

    /** Inter-stack mesh hops (XY Manhattan distance) between two units. */
    std::uint32_t
    interHops(UnitId a, UnitId b) const
    {
        StackId sa = unitStack[a], sb = unitStack[b];
        auto dx = stackX[sa] > stackX[sb] ? stackX[sa] - stackX[sb]
                                          : stackX[sb] - stackX[sa];
        auto dy = stackY[sa] > stackY[sb] ? stackY[sa] - stackY[sb]
                                          : stackY[sb] - stackY[sa];
        return dx + dy;
    }

    bool sameStack(UnitId a, UnitId b) const
    {
        return unitStack[a] == unitStack[b];
    }

    /** Position of a unit inside its stack (ring/crossbar port id). */
    std::uint32_t localIndex(UnitId u) const { return unitLocal[u]; }

    /**
     * Intra-stack hops between two units of the same stack: 1 for the
     * crossbar, ring distance for the ring.
     */
    std::uint32_t
    intraHops(UnitId a, UnitId b) const
    {
        if (a == b)
            return 0;
        if (intraTopo == IntraTopology::Crossbar)
            return 1;
        std::uint32_t d = unitLocal[a] > unitLocal[b]
            ? unitLocal[a] - unitLocal[b]
            : unitLocal[b] - unitLocal[a];
        return std::min(d, nUnitsPerStack - d);
    }

    /**
     * Scheduler distance cost between units (Eq. 2): Dlocal for the same
     * unit, Dintra within a stack, Dinter * hops across stacks.
     * Expressed in nanoseconds of one-way interconnect latency.
     * Precomputed into a dense table at construction for machines up to
     * distTableMaxUnits (the table is filled from the formula below, so
     * both paths are bit-identical).
     */
    double
    distanceCost(UnitId from, UnitId to) const
    {
        if (!distTable.empty())
            return distTable[static_cast<std::size_t>(from) * nUnits + to];
        return distanceCostSlow(from, to);
    }

    /** One row of the distance-cost table (empty on huge machines). */
    const double *
    distanceRow(UnitId from) const
    {
        return distTable.empty()
            ? nullptr
            : distTable.data() + static_cast<std::size_t>(from) * nUnits;
    }

    /** The per-hop inter-stack cost Dinter used by distanceCost(). */
    double interCost() const { return dInter; }

    /** The intra-stack cost Dintra used by distanceCost(). */
    double intraCost() const { return dIntra; }

    /** Mean intra-stack hop count between distinct units. */
    double
    meanIntraHops() const
    {
        if (intraTopo == IntraTopology::Crossbar)
            return 1.0;
        // Average bidirectional-ring distance over distinct pairs.
        double total = 0.0;
        for (std::uint32_t d = 1; d < nUnitsPerStack; ++d)
            total += std::min(d, nUnitsPerStack - d);
        return total / (nUnitsPerStack - 1);
    }

    /** Mesh diameter in hops. */
    std::uint32_t diameter() const { return meshDiam; }

  private:
    /** Table bound: 1024 units cost 8 MiB; beyond that, compute. */
    static constexpr std::uint32_t distTableMaxUnits = 1024;

    /** The formula behind distanceCost() (also fills the table). */
    double
    distanceCostSlow(UnitId from, UnitId to) const
    {
        if (from == to)
            return dLocal;
        if (unitStack[from] == unitStack[to])
            return dIntra * intraHops(from, to);
        return dInter * interHops(from, to);
    }

    std::uint32_t nUnits;
    std::uint32_t nStacks;
    std::uint32_t nGroups;
    std::uint32_t nUnitsPerStack;
    std::uint32_t meshDiam;
    IntraTopology intraTopo;
    double dLocal;
    double dIntra;
    double dInter;

    std::vector<StackId> unitStack;           // unit -> stack
    std::vector<std::uint32_t> unitLocal;     // unit -> in-stack index
    std::vector<GroupId> unitGroup;           // unit -> group
    std::vector<std::uint32_t> stackX, stackY; // stack -> mesh coords
    std::vector<std::vector<UnitId>> groupUnits; // group -> units
    std::vector<double> distTable;            // from*nUnits+to -> cost
};

} // namespace abndp

#endif // ABNDP_NET_TOPOLOGY_HH
