#include "net/topology.hh"

#include <cmath>

#include "common/logging.hh"

namespace abndp
{

Topology::Topology(const SystemConfig &cfg)
{
    nStacks = cfg.numStacks();
    nUnitsPerStack = cfg.unitsPerStack;
    nUnits = cfg.numUnits();
    nGroups = cfg.numGroups();
    meshDiam = cfg.meshDiameter();
    intraTopo = cfg.net.intraTopology;
    dLocal = 0.0;
    dIntra = cfg.net.intraHopNs;
    dInter = cfg.net.interHopNs;

    unitStack.assign(nUnits, 0);
    unitLocal.assign(nUnits, 0);
    unitGroup.assign(nUnits, 0);
    stackX.assign(nStacks, 0);
    stackY.assign(nStacks, 0);
    groupUnits.assign(nGroups, {});

    // Stack s sits at mesh coordinates (s % meshX, s / meshX).
    for (StackId s = 0; s < nStacks; ++s) {
        stackX[s] = s % cfg.meshX;
        stackY[s] = s / cfg.meshX;
    }

    // Partition stacks (or units, when there are more groups than stacks)
    // into localized groups, then number units group-by-group.
    UnitId next = 0;
    if (nGroups <= nStacks) {
        if (nStacks % nGroups != 0)
            fatal("number of stacks (", nStacks, ") not divisible by the ",
                  "number of camp groups (", nGroups, ")");

        // Pick a gx x gy tiling of the mesh with near-square tiles.
        std::uint32_t bestGx = 0;
        std::uint32_t bestBadness = ~0u;
        for (std::uint32_t gx = 1; gx <= nGroups; ++gx) {
            if (nGroups % gx != 0)
                continue;
            std::uint32_t gy = nGroups / gx;
            if (cfg.meshX % gx != 0 || cfg.meshY % gy != 0)
                continue;
            std::uint32_t tw = cfg.meshX / gx, th = cfg.meshY / gy;
            std::uint32_t badness = tw > th ? tw - th : th - tw;
            if (badness < bestBadness) {
                bestBadness = badness;
                bestGx = gx;
            }
        }
        if (bestGx == 0)
            fatal("cannot tile a ", cfg.meshX, "x", cfg.meshY, " mesh into ",
                  nGroups, " localized groups");

        std::uint32_t gx = bestGx, gy = nGroups / bestGx;
        std::uint32_t tileW = cfg.meshX / gx, tileH = cfg.meshY / gy;

        for (GroupId g = 0; g < nGroups; ++g) {
            std::uint32_t tx = g % gx, ty = g / gx;
            // Stacks inside the tile, row-major.
            for (std::uint32_t dy = 0; dy < tileH; ++dy) {
                for (std::uint32_t dx = 0; dx < tileW; ++dx) {
                    std::uint32_t x = tx * tileW + dx;
                    std::uint32_t y = ty * tileH + dy;
                    StackId s = y * cfg.meshX + x;
                    for (std::uint32_t l = 0; l < nUnitsPerStack; ++l) {
                        UnitId u = next++;
                        unitStack[u] = s;
                        unitLocal[u] = l;
                        unitGroup[u] = g;
                        groupUnits[g].push_back(u);
                    }
                }
            }
        }
    } else {
        // More groups than stacks: subdivide each stack's units into
        // equally sized consecutive subgroups.
        if (nGroups % nStacks != 0 || nUnitsPerStack % (nGroups / nStacks))
            fatal("cannot split ", nUnitsPerStack, " units per stack into ",
                  nGroups / nStacks, " groups per stack");
        std::uint32_t groupsPerStack = nGroups / nStacks;
        std::uint32_t unitsPerSub = nUnitsPerStack / groupsPerStack;
        for (StackId s = 0; s < nStacks; ++s) {
            for (std::uint32_t sub = 0; sub < groupsPerStack; ++sub) {
                GroupId g = s * groupsPerStack + sub;
                for (std::uint32_t l = 0; l < unitsPerSub; ++l) {
                    UnitId u = next++;
                    unitStack[u] = s;
                    unitLocal[u] = sub * unitsPerSub + l;
                    unitGroup[u] = g;
                    groupUnits[g].push_back(u);
                }
            }
        }
    }

    abndp_assert(next == nUnits);
    for (GroupId g = 0; g < nGroups; ++g)
        abndp_assert(groupUnits[g].size() == unitsPerGroup());

    // Dense unit-pair distance table for the scheduler/camp hot paths.
    if (nUnits <= distTableMaxUnits) {
        distTable.resize(static_cast<std::size_t>(nUnits) * nUnits);
        for (UnitId f = 0; f < nUnits; ++f)
            for (UnitId t = 0; t < nUnits; ++t)
                distTable[static_cast<std::size_t>(f) * nUnits + t] =
                    distanceCostSlow(f, t);
    }
}

} // namespace abndp
