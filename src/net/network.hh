/**
 * @file
 * Hierarchical interconnect timing/energy model: XY-routed inter-stack
 * mesh with per-link bandwidth reservation plus per-stack crossbars with
 * per-port serialization. Packet hops and transferred bits feed the
 * Figure-8 hop metric and the interconnect energy component.
 */

#ifndef ABNDP_NET_NETWORK_HH
#define ABNDP_NET_NETWORK_HH

#include <cstdint>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "energy/energy.hh"
#include "fault/fault_model.hh"
#include "net/topology.hh"
#include "obs/stats_registry.hh"
#include "obs/trace.hh"
#include "sim/bandwidth_meter.hh"

namespace abndp
{

namespace check
{
class CheckContext;
} // namespace check

/** Result of one network transfer. */
struct TransferResult
{
    /** One-way latency including queueing and serialization. */
    Tick latency = 0;
    /** Inter-stack mesh hops traversed. */
    std::uint32_t interHops = 0;
};

/** Common packet sizes (bytes): header-only request and line-sized data. */
struct PacketSizes
{
    static constexpr std::uint32_t request = 16;
    static constexpr std::uint32_t data = cachelineBytes + 16;
};

/** The two-level NDP interconnect. */
class Network
{
  public:
    /**
     * @param faults optional fault-injection engine; faulty mesh links
     *               add latency and transiently drop packets (bounded
     *               retry with exponential backoff).
     * @param tracer optional event tracer; every packet records one
     *               NocTransfer event on the source unit's NoC lane.
     */
    Network(const SystemConfig &cfg, const Topology &topo,
            EnergyAccount &energy, FaultModel *faults = nullptr,
            obs::Tracer *tracer = nullptr);

    /**
     * Send @p bytes from @p src to @p dst starting at @p start, reserving
     * link/port bandwidth along the way.
     */
    TransferResult transfer(UnitId src, UnitId dst, std::uint32_t bytes,
                            Tick start);

    /** Total inter-stack hops of all packets so far (Figure 8 metric). */
    std::uint64_t totalInterHops() const { return interHops.value(); }

    /** Total intra-stack crossbar traversals so far. */
    std::uint64_t totalIntraTraversals() const { return intraHops.value(); }

    std::uint64_t totalPackets() const { return packets.value(); }

    /** Transmission attempts lost on faulty links (fault injection). */
    std::uint64_t totalDropped() const { return dropped.value(); }

    /** Retransmissions issued to repair faulty-link drops. */
    std::uint64_t totalRetries() const { return retries.value(); }

    /** Queueing delay at crossbar ports (ns). */
    const stats::Distribution &portWaitNs() const { return portWait; }

    /** Queueing delay at mesh links (ns). */
    const stats::Distribution &linkWaitNs() const { return linkWait; }

    /** Clear link/port reservations (between epochs of separate runs). */
    void resetState();

    /**
     * Retire meter pages below the barrier tick @p tb on every link,
     * port, and ring meter. Exact: transfer() reserves hops at
     * monotonically advancing ticks starting from the packet's start,
     * and after a barrier every future packet starts at or after
     * @p tb, so no reservation can ever land below it.
     */
    void discardBefore(Tick tb);

    /** Register the interconnect stats under @p node. */
    void regStats(obs::StatNode &node) const;

    // ---- Invariant checking (src/check; observational only) ----

    /**
     * Arm the per-packet hop check: every transfer's walked hop count
     * is compared against the topology's Manhattan distance, and an
     * expected-hop total accumulates for end-of-epoch reconciliation
     * with the interHops counter. Mirrors the tracer injection pattern;
     * a null context (the default) costs one pointer test per packet.
     */
    void setCheckContext(check::CheckContext *ctx) { checkCtx = ctx; }

    /**
     * Sum of topology-predicted hop counts over all checked packets;
     * equals totalInterHops() when the checker was armed for the whole
     * run and every packet routed minimally.
     */
    std::uint64_t expectedInterHops() const { return checkedHops; }

    /** Audit every link/port/ring meter: no bucket above its width. */
    void auditBandwidth(check::CheckContext &ctx) const;

  private:
    /** Index of the directed mesh link leaving stack s toward dir. */
    std::size_t
    linkIndex(StackId s, std::uint32_t dir) const
    {
        return static_cast<std::size_t>(s) * 4 + dir;
    }

    const Topology &topo;
    EnergyAccount &energy;
    FaultModel *faults;
    obs::Tracer *tracer;
    check::CheckContext *checkCtx = nullptr;
    /** Topology-predicted hops of every packet checked so far. */
    std::uint64_t checkedHops = 0;
    std::uint32_t meshX;
    IntraTopology intraTopo;
    std::uint32_t unitsPerStack;
    /** Any faulty link configured (hoists the per-hop fault query). */
    bool linkFaultsOn = false;

    Tick intraLatency;
    Tick interLatency;
    double intraTicksPerByte;
    double interTicksPerByte;

    /** Bandwidth meter of each directed mesh link (stack x 4 dirs). */
    std::vector<BandwidthMeter> linkMeter;
    /**
     * Intra-stack meters: one crossbar port per unit, or one directed
     * ring link per (unit, direction) in ring mode (same storage).
     */
    std::vector<BandwidthMeter> portMeter;
    std::vector<BandwidthMeter> ringMeter; // ring mode: 2 per unit

    stats::Counter interHops;
    stats::Counter intraHops;
    stats::Counter packets;
    stats::Counter dropped;
    stats::Counter retries;
    stats::Distribution portWait;
    stats::Distribution linkWait;
};

} // namespace abndp

#endif // ABNDP_NET_NETWORK_HH
