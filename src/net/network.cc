#include "net/network.hh"

#include <algorithm>

#include "check/check_context.hh"

namespace abndp
{

Network::Network(const SystemConfig &cfg, const Topology &topo,
                 EnergyAccount &energy, FaultModel *faults,
                 obs::Tracer *tracer)
    : topo(topo),
      energy(energy),
      faults(faults),
      tracer(tracer),
      meshX(cfg.meshX),
      intraLatency(static_cast<Tick>(cfg.net.intraHopNs * ticksPerNs)),
      interLatency(static_cast<Tick>(cfg.net.interHopNs * ticksPerNs)),
      // intra link: intraLinkBits wide at intraGHz (one transfer/cycle).
      intraTicksPerByte(8.0 * 1000.0
                        / (cfg.net.intraLinkBits * cfg.net.intraGHz)),
      // inter link: interGBs bytes per ns is interGBs / 1e0; ticks/byte =
      // 1000 / (GB/s) since 1 GB/s = 1 byte/ns.
      interTicksPerByte(1000.0 / cfg.net.interGBs),
      linkMeter(static_cast<std::size_t>(topo.numStacks()) * 4),
      portMeter(topo.numUnits()),
      ringMeter(cfg.net.intraTopology == IntraTopology::Ring
                    ? static_cast<std::size_t>(topo.numUnits()) * 2
                    : 0)
{
    intraTopo = cfg.net.intraTopology;
    unitsPerStack = cfg.unitsPerStack;
    linkFaultsOn = faults && faults->anyLinkFault();
}

TransferResult
Network::transfer(UnitId src, UnitId dst, std::uint32_t bytes, Tick start)
{
    TransferResult res;
    if (src == dst)
        return res;

    ++packets;
    if (tracer && tracer->enabled())
        tracer->record(obs::TraceEvent::NocTransfer, src,
                       obs::Tracer::laneNet, start, 0,
                       (static_cast<std::uint64_t>(dst) << 32) | bytes);
    Tick t = start;

    auto crossbar = [&](UnitId port) {
        auto ser = static_cast<Tick>(intraTicksPerByte * bytes);
        Tick begin = portMeter[port].reserve(t, ser);
        // 0/1000 is exactly 0.0: uncontended hops skip the divide.
        const Tick wait = begin - t;
        portWait.sample(wait ? static_cast<double>(wait) / ticksPerNs
                             : 0.0);
        t = begin + intraLatency + ser;
        ++intraHops;
        energy.addIntraTransfer(bytes);
    };

    // Ring mode: traverse directed ring links between in-stack ports.
    // The stack router sits at local index 0.
    auto ring = [&](UnitId from, std::uint32_t toLocal) {
        std::uint32_t cur = topo.localIndex(from);
        UnitId base = from - cur; // first unit of this stack
        auto ser = static_cast<Tick>(intraTicksPerByte * bytes);
        while (cur != toLocal) {
            std::uint32_t fwd = (toLocal + unitsPerStack - cur)
                % unitsPerStack;
            bool clockwise = fwd <= unitsPerStack - fwd;
            std::uint32_t dir = clockwise ? 0 : 1;
            Tick begin =
                ringMeter[(base + cur) * 2 + dir].reserve(t, ser);
            const Tick wait = begin - t;
            portWait.sample(wait ? static_cast<double>(wait) / ticksPerNs
                                 : 0.0);
            t = begin + intraLatency + ser;
            ++intraHops;
            energy.addIntraTransfer(bytes);
            cur = clockwise ? (cur + 1) % unitsPerStack
                            : (cur + unitsPerStack - 1) % unitsPerStack;
        }
    };

    auto intraTraverse = [&](UnitId from, std::uint32_t toLocal,
                             UnitId toPort) {
        if (intraTopo == IntraTopology::Ring)
            ring(from, toLocal);
        else
            crossbar(toPort);
    };

    if (topo.sameStack(src, dst)) {
        // Straight intra-stack delivery.
        intraTraverse(src, topo.localIndex(dst), dst);
        res.latency = t - start;
        if (checkCtx && checkCtx->enabled())
            checkCtx->require(res.interHops == 0, "NoC packet ", src,
                              "->", dst, " is intra-stack but walked ",
                              res.interHops, " inter-stack hops");
        return res;
    }

    // Source stack: reach the stack router (local index 0).
    intraTraverse(src, 0, src);

    // XY route across the mesh; each directed link is a bandwidth
    // resource (store-and-forward per hop).
    StackId s = topo.stackOf(src);
    StackId d = topo.stackOf(dst);
    auto [sx, sy] = topo.stackCoord(s);
    auto [dx, dy] = topo.stackCoord(d);

    std::uint32_t x = sx, y = sy;
    StackId cur = s;
    const auto interSer = static_cast<Tick>(interTicksPerByte * bytes);
    auto hop = [&](std::uint32_t dir, StackId next) {
        const Tick ser = interSer;
        std::size_t li = linkIndex(cur, dir);
        Tick begin = linkMeter[li].reserve(t, ser);
        const Tick wait = begin - t;
        linkWait.sample(wait ? static_cast<double>(wait) / ticksPerNs
                             : 0.0);
        t = begin + interLatency + ser;
        if (linkFaultsOn && faults->linkFaulty(li)) {
            // Injected link fault: a fixed latency adder plus transient
            // drops. Each drop is repaired sender-side — an exponential
            // backoff timeout, then a retransmission that reserves the
            // link again (so retries contend for bandwidth like any
            // other packet). drawLinkDrops() bounds the drop run by the
            // retry budget, so delivery always completes.
            t += faults->linkExtraTicks();
            std::uint32_t drops = faults->drawLinkDrops();
            for (std::uint32_t a = 0; a < drops; ++a) {
                ++dropped;
                ++retries;
                t += faults->retryBackoffTicks(a);
                Tick rb = linkMeter[li].reserve(t, ser);
                t = rb + interLatency + ser + faults->linkExtraTicks();
                energy.addInterTransfer(bytes, 1);
            }
        }
        cur = next;
        ++res.interHops;
    };

    while (x != dx) {
        if (x < dx) {
            hop(0, cur + 1);
            ++x;
        } else {
            hop(1, cur - 1);
            --x;
        }
    }
    while (y != dy) {
        if (y < dy) {
            hop(2, cur + meshX);
            ++y;
        } else {
            hop(3, cur - meshX);
            --y;
        }
    }

    interHops += res.interHops;
    energy.addInterTransfer(bytes, res.interHops);

    if (checkCtx && checkCtx->enabled()) {
        // XY routing is minimal: the walked hop count must equal the
        // Manhattan distance between the two stacks.
        std::uint32_t expect = topo.interHops(src, dst);
        checkedHops += expect;
        checkCtx->require(res.interHops == expect, "NoC packet ", src,
                          "->", dst, " walked ", res.interHops,
                          " inter-stack hops; topology distance is ",
                          expect);
    }

    // Destination stack: from the router to the unit.
    UnitId dst_router = dst - topo.localIndex(dst);
    if (intraTopo == IntraTopology::Ring)
        ring(dst_router, topo.localIndex(dst));
    else
        crossbar(dst);

    res.latency = t - start;
    return res;
}

void
Network::regStats(obs::StatNode &node) const
{
    node.addCounter("interHops", &interHops);
    node.addCounter("intraTraversals", &intraHops);
    node.addCounter("packets", &packets);
    node.addCounter("dropped", &dropped);
    node.addCounter("retries", &retries);
    node.addDistribution("portWaitNs", &portWait);
    node.addDistribution("linkWaitNs", &linkWait);
}

void
Network::auditBandwidth(check::CheckContext &ctx) const
{
    for (std::size_t i = 0; i < linkMeter.size(); ++i)
        check::checkBucketFill(ctx, "net link", i,
                               linkMeter[i].maxBucketFill(),
                               linkMeter[i].bucketWidth());
    for (std::size_t i = 0; i < portMeter.size(); ++i)
        check::checkBucketFill(ctx, "net port", i,
                               portMeter[i].maxBucketFill(),
                               portMeter[i].bucketWidth());
    for (std::size_t i = 0; i < ringMeter.size(); ++i)
        check::checkBucketFill(ctx, "net ring", i,
                               ringMeter[i].maxBucketFill(),
                               ringMeter[i].bucketWidth());
}

void
Network::resetState()
{
    for (auto &m : linkMeter)
        m.reset();
    for (auto &m : portMeter)
        m.reset();
    for (auto &m : ringMeter)
        m.reset();
}

void
Network::discardBefore(Tick tb)
{
    for (auto &m : linkMeter)
        m.discardBefore(tb);
    for (auto &m : portMeter)
        m.discardBefore(tb);
    for (auto &m : ringMeter)
        m.discardBefore(tb);
}

} // namespace abndp
