/**
 * @file
 * Per-unit DRAM channel timing and energy model (HBM-like, Table 1).
 *
 * Each NDP unit owns one channel with several independent banks. Banks
 * track an open row and a next-free tick; accesses pay tCAS on a row hit
 * or tRP + tRCD + tCAS on a row miss, plus the data burst, and queue
 * behind earlier accesses to the same bank.
 */

#ifndef ABNDP_MEM_DRAM_HH
#define ABNDP_MEM_DRAM_HH

#include <cstdint>
#include <vector>

#include "common/config.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "energy/energy.hh"
#include "fault/fault_model.hh"
#include "obs/stats_registry.hh"
#include "sim/bandwidth_meter.hh"

namespace abndp
{

namespace check
{
class CheckContext;
} // namespace check

/** One DRAM channel (the local vault of one NDP unit). */
class DramChannel
{
  public:
    /**
     * @param unit owning NDP unit (straggler/ECC fault targeting)
     * @param faults optional fault-injection engine: probabilistic
     *               per-bank ECC-retry latency adders and straggler
     *               bandwidth derating apply to this channel
     */
    DramChannel(const SystemConfig &cfg, EnergyAccount &energy,
                UnitId unit = 0, const FaultModel *faults = nullptr);

    /**
     * Perform one access and reserve the bank.
     *
     * @param addr byte address (bank/row derived from it)
     * @param bytes transfer size
     * @param isWrite write access
     * @param cacheRegion access targets the Traveller Cache data region
     *                    (energy attributed to the DRAM-cache component)
     * @param start tick at which the request arrives at the channel
     * @return total latency from @p start until data is available
     */
    Tick access(Addr addr, std::uint32_t bytes, bool isWrite,
                bool cacheRegion, Tick start);

    std::uint64_t reads() const { return nReads.value(); }
    std::uint64_t writes() const { return nWrites.value(); }
    std::uint64_t rowMisses() const { return nRowMisses.value(); }
    std::uint64_t refreshes() const { return nRefreshes.value(); }

    /** Accesses that paid an injected ECC-retry cycle. */
    std::uint64_t eccRetries() const { return nEccRetries.value(); }

    /** Queueing delay behind earlier same-bank accesses (ns). */
    const stats::Distribution &queueWaitNs() const { return waitNs; }

    /** Register this channel's stats under @p node. */
    void
    regStats(obs::StatNode &node) const
    {
        node.addCounter("reads", &nReads);
        node.addCounter("writes", &nWrites);
        node.addCounter("rowMisses", &nRowMisses);
        node.addCounter("refreshes", &nRefreshes);
        node.addCounter("eccRetries", &nEccRetries);
        node.addDistribution("queueWaitNs", &waitNs);
    }

    void resetState();

    /**
     * Retire bank-meter pages unreachable after the barrier at @p tb.
     *
     * Every access() reservation walks forward from its start tick,
     * and after a bulk-synchronous barrier all future starts are
     * >= @p tb — except the lazy refresh catch-up, which backdates
     * reservations to bank.nextRefresh. nextRefresh is monotone, so
     * flooring each bank's discard at min(tb, nextRefresh) keeps the
     * retirement exact even for a bank whose refresh schedule lags
     * the barrier arbitrarily far behind.
     */
    void discardBefore(Tick tb);

    /**
     * Audit every bank meter against the bandwidth-conservation
     * invariant (no bucket filled beyond its width); src/check only.
     */
    void auditBandwidth(check::CheckContext &ctx) const;

  private:
    /** Spread initial per-bank refresh deadlines round-robin. */
    void staggerRefresh();

    struct Bank
    {
        BandwidthMeter meter;
        std::uint64_t openRow = ~0ull;
        /** Next scheduled refresh for this bank. */
        Tick nextRefresh = 0;
    };

    EnergyAccount &energy;
    const FaultModel *faults;
    UnitId unit;
    /** Per-channel stream for the ECC-retry draws (seeded per unit). */
    Rng faultRng;
    std::vector<Bank> banks;
    std::uint32_t rowBytes;
    // Hot-path precomputation: power-of-two row size / bank count
    // address with shift/mask instead of 64-bit divisions, and a
    // fault-free channel skips the injector block entirely (an exact
    // no-op: no probability draw and slowdown 1.0).
    bool rowPow2 = false;
    std::uint32_t rowShift = 0;
    bool bankPow2 = false;
    std::uint64_t bankMask = 0;
    bool faultsActive = false;
    Tick tCas;
    Tick tRcd;
    Tick tRp;
    Tick tRefi;
    Tick tRfc;
    bool refreshOn;
    /** Ticks to burst one byte over the data bus. */
    double ticksPerByte;

    stats::Counter nReads;
    stats::Counter nWrites;
    stats::Counter nRowMisses;
    stats::Counter nRefreshes;
    stats::Counter nEccRetries;
    stats::Distribution waitNs;
};

} // namespace abndp

#endif // ABNDP_MEM_DRAM_HH
