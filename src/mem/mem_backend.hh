/**
 * @file
 * Pluggable per-unit memory timing backends.
 *
 * Every DRAM access of one NDP unit — home reads/writes and Traveller
 * cache-region accesses alike — flows through a MemBackend. The seam
 * separates the *what* (MemSystem's access flow, servedLevel
 * semantics, energy attribution) from the *when* (queueing and bank
 * timing), so memory models can be swapped per run:
 *
 *  - MeterBackend (default): the historical open-row + bucketed
 *    bandwidth-meter model, bit-identical to the old DramChannel.
 *  - DdrBackend: a per-bank state machine with page-policy choice,
 *    tRAS/tWR recovery and channel tFAW ACT-window tracking.
 *
 * Both backends draw their fault-injection randomness from the same
 * per-unit seeded stream and must stay bit-deterministic: same config
 * implies the same metrics, run to run and thread count to thread
 * count.
 */

#ifndef ABNDP_MEM_MEM_BACKEND_HH
#define ABNDP_MEM_MEM_BACKEND_HH

#include <cstdint>
#include <memory>

#include "common/config.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "energy/energy.hh"
#include "fault/fault_model.hh"
#include "obs/stats_registry.hh"

namespace abndp
{

namespace check
{
class CheckContext;
} // namespace check

/** One per-unit DRAM channel timing model (see file comment). */
class MemBackend
{
  public:
    /**
     * @param unit owning NDP unit (straggler/ECC fault targeting)
     * @param faults optional fault-injection engine: probabilistic
     *               per-bank ECC-retry latency adders and straggler
     *               bandwidth derating apply to this channel
     */
    MemBackend(const SystemConfig &cfg, EnergyAccount &energy,
               UnitId unit, const FaultModel *faults);

    virtual ~MemBackend() = default;

    /**
     * Perform one access and reserve the bank.
     *
     * @param addr byte address (bank/row derived from it)
     * @param bytes transfer size
     * @param isWrite write access
     * @param cacheRegion access targets the Traveller Cache data region
     *                    (energy attributed to the DRAM-cache component)
     * @param start tick at which the request arrives at the channel
     * @return total latency from @p start until data is available
     */
    virtual Tick access(Addr addr, std::uint32_t bytes, bool isWrite,
                        bool cacheRegion, Tick start) = 0;

    /** Forget all bank state (open rows, meters, refresh schedule). */
    virtual void resetState() = 0;

    /**
     * Retire bank-meter pages unreachable after the barrier at @p tb
     * (see MeterBackend::discardBefore for the refresh-floor rule).
     */
    virtual void discardBefore(Tick tb) = 0;

    /**
     * Audit every bank meter against the bandwidth-conservation
     * invariant (no bucket filled beyond its width); src/check only.
     */
    virtual void auditBandwidth(check::CheckContext &ctx) const = 0;

    /**
     * Audit backend-specific timing invariants (e.g. the DDR tFAW
     * ACT-window bound); src/check only. Default: nothing to audit.
     */
    virtual void auditTiming(check::CheckContext &ctx) const;

    /** Register this channel's stats under @p node. */
    virtual void regStats(obs::StatNode &node) const;

    std::uint64_t reads() const { return nReads.value(); }
    std::uint64_t writes() const { return nWrites.value(); }
    std::uint64_t rowMisses() const { return nRowMisses.value(); }
    std::uint64_t refreshes() const { return nRefreshes.value(); }

    /** Accesses served out of an already-open row. */
    std::uint64_t
    rowHits() const
    {
        return nReads.value() + nWrites.value() - nRowMisses.value();
    }

    /** Ticks of ACT delay forced by the tFAW window (DdrBackend). */
    virtual std::uint64_t actStalls() const { return 0; }

    /** Accesses that paid an injected ECC-retry cycle. */
    std::uint64_t eccRetries() const { return nEccRetries.value(); }

    /** Queueing delay behind earlier same-bank accesses (ns). */
    const stats::Distribution &queueWaitNs() const { return waitNs; }

  protected:
    /**
     * Fault-injection adjustment shared by all backends: an ECC-retry
     * draw adds latency to @p core, then straggler bandwidth derating
     * stretches both @p core and @p burst. The Rng draw order (one
     * chance() per access when eccRetryProb > 0) is part of the
     * bit-determinism contract — backends must call this exactly once
     * per access, after composing the un-derated latencies.
     */
    void
    applyFaults(Tick &core, Tick &burst, Tick start)
    {
        double p = faults->eccRetryProb();
        if (p > 0.0 && faultRng.chance(p)) {
            ++nEccRetries;
            core += faults->eccRetryTicks();
        }
        double slow = faults->bandwidthSlowdown(unit, start);
        if (slow != 1.0) {
            core = static_cast<Tick>(core * slow);
            burst = static_cast<Tick>(burst * slow);
        }
    }

    EnergyAccount &energy;
    const FaultModel *faults;
    UnitId unit;
    /** Per-channel stream for the ECC-retry draws (seeded per unit). */
    Rng faultRng;
    /** Fault-free channels skip applyFaults() entirely (exact no-op). */
    bool faultsActive = false;

    // Timing shared by every backend (ticks; from DramConfig).
    Tick tCas;
    Tick tRcd;
    Tick tRp;
    Tick tRefi;
    Tick tRfc;
    bool refreshOn;
    std::uint32_t refreshCatchupMax;
    /** Ticks to burst one byte over the data bus. */
    double ticksPerByte;

    stats::Counter nReads;
    stats::Counter nWrites;
    stats::Counter nRowMisses;
    stats::Counter nRefreshes;
    stats::Counter nEccRetries;
    stats::Distribution waitNs;
};

/**
 * Construct the backend selected by cfg.dram.backend for @p unit.
 * The one switch over MemBackendKind in the simulator.
 */
std::unique_ptr<MemBackend>
makeMemBackend(const SystemConfig &cfg, EnergyAccount &energy,
               UnitId unit = 0, const FaultModel *faults = nullptr);

} // namespace abndp

#endif // ABNDP_MEM_MEM_BACKEND_HH
