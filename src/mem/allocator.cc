#include "mem/allocator.hh"

#include "common/logging.hh"

namespace abndp
{

SimAllocator::SimAllocator(const SystemConfig &cfg)
    : amap(cfg),
      // The Traveller Cache region occupies the top 1/R of each unit's
      // DRAM; application data may not be placed there.
      capacityPerUnit(cfg.memBytesPerUnit
                      - (cfg.traveller.style != CacheStyle::None
                             ? cfg.travellerBytesPerUnit()
                             : 0)),
      bump(cfg.numUnits(), 0)
{
}

Addr
SimAllocator::allocate(std::uint64_t bytes, UnitId unit, std::uint64_t align)
{
    abndp_assert(unit < bump.size());
    abndp_assert(align > 0 && (align & (align - 1)) == 0,
                 "alignment must be a power of two");
    std::uint64_t off = (bump[unit] + align - 1) & ~(align - 1);
    if (off + bytes > capacityPerUnit)
        fatal("unit ", unit, " out of simulated memory (",
              off + bytes, " > ", capacityPerUnit, " bytes)");
    bump[unit] = off + bytes;
    return amap.unitBase(unit) + off;
}

std::vector<Addr>
SimAllocator::allocateArray(std::uint64_t elemBytes, std::uint64_t count,
                            Placement placement, UnitId singleUnit)
{
    const std::uint32_t n_units = amap.numUnits();
    std::vector<Addr> addrs(count);

    switch (placement) {
      case Placement::Interleaved: {
        // Count elements per unit, reserve contiguous runs, then assign
        // element i to slot i/numUnits within unit i%numUnits.
        std::vector<std::uint64_t> per(n_units, 0);
        for (std::uint64_t i = 0; i < count; ++i)
            ++per[i % n_units];
        std::vector<Addr> base(n_units);
        for (UnitId u = 0; u < n_units; ++u)
            base[u] = per[u] ? allocate(per[u] * elemBytes, u) : 0;
        for (std::uint64_t i = 0; i < count; ++i) {
            UnitId u = i % n_units;
            addrs[i] = base[u] + (i / n_units) * elemBytes;
        }
        break;
      }
      case Placement::Blocked: {
        std::uint64_t chunk = (count + n_units - 1) / n_units;
        for (UnitId u = 0; u < n_units; ++u) {
            std::uint64_t lo = static_cast<std::uint64_t>(u) * chunk;
            std::uint64_t hi = std::min<std::uint64_t>(lo + chunk, count);
            if (lo >= hi)
                break;
            Addr b = allocate((hi - lo) * elemBytes, u);
            for (std::uint64_t i = lo; i < hi; ++i)
                addrs[i] = b + (i - lo) * elemBytes;
        }
        break;
      }
      case Placement::SingleUnit: {
        Addr b = allocate(count * elemBytes, singleUnit);
        for (std::uint64_t i = 0; i < count; ++i)
            addrs[i] = b + i * elemBytes;
        break;
      }
    }
    return addrs;
}

} // namespace abndp
