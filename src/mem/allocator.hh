/**
 * @file
 * Simulated memory allocator. Workloads lay out their primary data in the
 * simulated address space with it; the default element-interleaved
 * placement reproduces the paper's baseline "evenly distribute all data
 * elements among the NDP units".
 */

#ifndef ABNDP_MEM_ALLOCATOR_HH
#define ABNDP_MEM_ALLOCATOR_HH

#include <cstdint>
#include <vector>

#include "common/config.hh"
#include "mem/address_map.hh"

namespace abndp
{

/** Element placement policies for array allocations. */
enum class Placement
{
    /** Element i lives in unit (i + offset) % numUnits. */
    Interleaved,
    /** Elements are split into numUnits contiguous chunks. */
    Blocked,
    /** All elements in one designated unit. */
    SingleUnit,
};

/** Bump allocator over the per-unit memory regions. */
class SimAllocator
{
  public:
    explicit SimAllocator(const SystemConfig &cfg);

    /**
     * Allocate @p bytes in @p unit's local region.
     * @return the byte address of the allocation.
     */
    Addr allocate(std::uint64_t bytes, UnitId unit,
                  std::uint64_t align = 1);

    /**
     * Allocate an array of @p count elements of @p elemBytes each and
     * return each element's address. Elements in the same unit are packed
     * contiguously (so sub-line elements share cache lines).
     */
    std::vector<Addr> allocateArray(std::uint64_t elemBytes,
                                    std::uint64_t count,
                                    Placement placement,
                                    UnitId singleUnit = 0);

    /** Bytes already allocated in a unit. */
    std::uint64_t usedBytes(UnitId u) const { return bump[u]; }

    const AddressMap &map() const { return amap; }

  private:
    AddressMap amap;
    std::uint64_t capacityPerUnit;
    std::vector<std::uint64_t> bump;
};

} // namespace abndp

#endif // ABNDP_MEM_ALLOCATOR_HH
