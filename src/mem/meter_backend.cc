#include "mem/meter_backend.hh"

#include "check/check_context.hh"

namespace abndp
{

MeterBackend::MeterBackend(const SystemConfig &cfg, EnergyAccount &energy,
                           UnitId unit, const FaultModel *faults)
    : MemBackend(cfg, energy, unit, faults),
      banks(cfg.dram.banks),
      rowSplit(cfg.dram.rowBytes),
      bankSplit(cfg.dram.banks)
{
    staggerRefresh();
}

void
MeterBackend::staggerRefresh()
{
    // Banks refresh round-robin so no refresh lands exactly at t = 0.
    for (std::size_t b = 0; b < banks.size(); ++b)
        banks[b].nextRefresh = tRefi * (b + 1) / banks.size();
}

Tick
MeterBackend::access(Addr addr, std::uint32_t bytes, bool isWrite,
                     bool cacheRegion, Tick start)
{
    std::uint64_t row = rowSplit.div(addr);
    auto &bank = banks[bankSplit.mod(row)];

    // Lazy per-bank refresh: account the refreshes due before this
    // access; long idle gaps only charge a bounded backlog (the rest is
    // hidden in idle time anyway). Refresh closes the row buffer.
    if (refreshOn && bank.nextRefresh <= start) {
        std::uint32_t catchup = 0;
        while (bank.nextRefresh <= start && catchup < refreshCatchupMax) {
            bank.meter.reserve(bank.nextRefresh, tRfc);
            bank.nextRefresh += tRefi;
            ++nRefreshes;
            ++catchup;
        }
        if (bank.nextRefresh <= start)
            bank.nextRefresh = start + tRefi;
        bank.openRow = ~0ull;
    }

    Tick core;
    bool row_miss = bank.openRow != row;
    if (row_miss) {
        ++nRowMisses;
        core = tRp + tRcd + tCas;
        bank.openRow = row;
    } else {
        core = tCas;
    }

    auto burst = static_cast<Tick>(ticksPerByte * bytes);
    if (faultsActive)
        applyFaults(core, burst, start);
    Tick begin = bank.meter.reserve(start, core + burst);
    Tick queue = begin - start;
    // Skip the int-to-double divide for uncontended accesses; 0/1000
    // is exactly 0.0, so the sampled distribution is unchanged.
    waitNs.sample(queue ? static_cast<double>(queue) / ticksPerNs : 0.0);

    if (isWrite)
        ++nWrites;
    else
        ++nReads;
    energy.addDramAccess(bytes, row_miss, cacheRegion);

    return queue + core + burst;
}

void
MeterBackend::auditBandwidth(check::CheckContext &ctx) const
{
    for (std::size_t b = 0; b < banks.size(); ++b)
        check::checkBucketFill(ctx, "dram bank", b,
                               banks[b].meter.maxBucketFill(),
                               banks[b].meter.bucketWidth());
}

void
MeterBackend::discardBefore(Tick tb)
{
    for (auto &bank : banks) {
        Tick floor = refreshOn && bank.nextRefresh < tb
            ? bank.nextRefresh : tb;
        bank.meter.discardBefore(floor);
    }
}

void
MeterBackend::resetState()
{
    for (auto &bank : banks) {
        bank.meter.reset();
        bank.openRow = ~0ull;
    }
    staggerRefresh();
}

} // namespace abndp
