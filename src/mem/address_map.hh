/**
 * @file
 * Global simulated address space: each NDP unit owns one contiguous
 * region of size memBytesPerUnit; an address's "home" is the unit whose
 * local DRAM stores it.
 */

#ifndef ABNDP_MEM_ADDRESS_MAP_HH
#define ABNDP_MEM_ADDRESS_MAP_HH

#include <bit>

#include "common/config.hh"
#include "common/logging.hh"
#include "common/types.hh"

namespace abndp
{

/** Address <-> home-unit mapping (range-partitioned address space). */
class AddressMap
{
  public:
    explicit AddressMap(const SystemConfig &cfg)
        : bytesPerUnit(cfg.memBytesPerUnit),
          unitShift(std::countr_zero(cfg.memBytesPerUnit)),
          nUnits(cfg.numUnits())
    {
    }

    /** Home NDP unit of a byte address. */
    UnitId
    homeOf(Addr addr) const
    {
        auto u = static_cast<UnitId>(addr >> unitShift);
        abndp_assert(u < nUnits, "address ", addr, " outside memory");
        return u;
    }

    /** First byte address owned by a unit. */
    Addr unitBase(UnitId u) const
    {
        return static_cast<Addr>(u) << unitShift;
    }

    /** Offset of an address within its home unit's region. */
    Addr offsetInUnit(Addr addr) const
    {
        return addr & (bytesPerUnit - 1);
    }

    std::uint64_t unitBytes() const { return bytesPerUnit; }
    std::uint32_t numUnits() const { return nUnits; }

  private:
    std::uint64_t bytesPerUnit;
    std::uint32_t unitShift;
    std::uint32_t nUnits;
};

} // namespace abndp

#endif // ABNDP_MEM_ADDRESS_MAP_HH
