/**
 * @file
 * Global simulated address space: each NDP unit owns one contiguous
 * region of size memBytesPerUnit; an address's "home" is the unit whose
 * local DRAM stores it.
 */

#ifndef ABNDP_MEM_ADDRESS_MAP_HH
#define ABNDP_MEM_ADDRESS_MAP_HH

#include <algorithm>
#include <bit>

#include "common/config.hh"
#include "common/logging.hh"
#include "common/types.hh"

namespace abndp
{

/**
 * Division/modulo by a fixed divisor, strength-reduced to shift/mask
 * when the divisor is a power of two. The memory layer decodes every
 * access through one of these (rows, banks, columns, camp groups), so
 * the pow2 fast path matters on the hot path — and keeping the decode
 * arithmetic in one place keeps MeterBackend, DdrBackend and
 * CampMapping from drifting apart.
 */
class Pow2Split
{
  public:
    Pow2Split() = default;

    explicit Pow2Split(std::uint64_t divisor)
        : n(divisor),
          pow2(divisor != 0 && (divisor & (divisor - 1)) == 0),
          shift(pow2 ? static_cast<std::uint32_t>(
                           std::countr_zero(divisor)) : 0),
          mask(divisor - 1)
    {
        abndp_assert(divisor != 0, "Pow2Split divisor must be nonzero");
    }

    std::uint64_t div(std::uint64_t v) const
    {
        return pow2 ? v >> shift : v / n;
    }

    std::uint64_t mod(std::uint64_t v) const
    {
        return pow2 ? v & mask : v % n;
    }

    std::uint64_t divisor() const { return n; }
    bool isPow2() const { return pow2; }

  private:
    std::uint64_t n = 1;
    bool pow2 = true;
    std::uint32_t shift = 0;
    std::uint64_t mask = 0;
};

/** One decoded DRAM coordinate (DramAddrMap::decode). */
struct DramCoord
{
    std::uint64_t row;
    std::uint32_t bank;
    std::uint32_t bankGroup;
    std::uint64_t column;
};

/**
 * Channel-local DRAM address decoder: splits a byte address into
 * row / bank / bank-group / column per the configured interleave
 * order (DramAddrMapKind). Bank groups are dealt round-robin across
 * the flat bank index, so consecutive banks land in different groups.
 */
class DramAddrMap
{
  public:
    DramAddrMap(const DramConfig &d, std::uint64_t bytesPerUnit)
        : kind(d.addrMap),
          rowSplit(d.rowBytes),
          bankSplit(d.banks),
          burstSplit(d.burstBytes),
          columnSplit(std::max<std::uint64_t>(
              1, d.rowBytes / d.burstBytes)),
          unitSplit(bytesPerUnit),
          bankBytesSplit(std::max<std::uint64_t>(
              1, bytesPerUnit / d.banks)),
          groupSplit(std::max<std::uint32_t>(1, d.bankGroups))
    {
    }

    DramCoord
    decode(Addr addr) const
    {
        DramCoord c{};
        switch (kind) {
          case DramAddrMapKind::RowBankColumn: {
            // column : bank : row, low bits first — consecutive rows
            // rotate across banks (the historical meter order).
            c.column = rowSplit.mod(addr);
            std::uint64_t x = rowSplit.div(addr);
            c.bank = static_cast<std::uint32_t>(bankSplit.mod(x));
            c.row = bankSplit.div(x);
            break;
          }
          case DramAddrMapKind::RowColumnBank: {
            // burst : bank : column : row — consecutive bursts rotate
            // across banks for maximum bank parallelism.
            std::uint64_t x = burstSplit.div(addr);
            c.bank = static_cast<std::uint32_t>(bankSplit.mod(x));
            std::uint64_t y = bankSplit.div(x);
            c.column = columnSplit.mod(y);
            c.row = columnSplit.div(y);
            break;
          }
          case DramAddrMapKind::BankRowColumn: {
            // Each bank owns one contiguous slice of the unit region.
            std::uint64_t off = unitSplit.mod(addr);
            c.bank = static_cast<std::uint32_t>(bankBytesSplit.div(off));
            std::uint64_t rest = bankBytesSplit.mod(off);
            c.column = rowSplit.mod(rest);
            c.row = rowSplit.div(rest);
            break;
          }
        }
        c.bankGroup = static_cast<std::uint32_t>(groupSplit.mod(c.bank));
        return c;
    }

  private:
    DramAddrMapKind kind;
    Pow2Split rowSplit;
    Pow2Split bankSplit;
    Pow2Split burstSplit;
    Pow2Split columnSplit;
    Pow2Split unitSplit;
    Pow2Split bankBytesSplit;
    Pow2Split groupSplit;
};

/** Address <-> home-unit mapping (range-partitioned address space). */
class AddressMap
{
  public:
    explicit AddressMap(const SystemConfig &cfg)
        : bytesPerUnit(cfg.memBytesPerUnit),
          unitShift(std::countr_zero(cfg.memBytesPerUnit)),
          nUnits(cfg.numUnits())
    {
    }

    /** Home NDP unit of a byte address. */
    UnitId
    homeOf(Addr addr) const
    {
        auto u = static_cast<UnitId>(addr >> unitShift);
        abndp_assert(u < nUnits, "address ", addr, " outside memory");
        return u;
    }

    /** First byte address owned by a unit. */
    Addr unitBase(UnitId u) const
    {
        return static_cast<Addr>(u) << unitShift;
    }

    /** Offset of an address within its home unit's region. */
    Addr offsetInUnit(Addr addr) const
    {
        return addr & (bytesPerUnit - 1);
    }

    std::uint64_t unitBytes() const { return bytesPerUnit; }
    std::uint32_t numUnits() const { return nUnits; }

  private:
    std::uint64_t bytesPerUnit;
    std::uint32_t unitShift;
    std::uint32_t nUnits;
};

} // namespace abndp

#endif // ABNDP_MEM_ADDRESS_MAP_HH
