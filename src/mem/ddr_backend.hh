/**
 * @file
 * Bank-state DDR/HBM memory backend.
 *
 * Where MeterBackend folds all bank timing into "row hit or row miss
 * plus queueing", DdrBackend keeps a per-bank state machine in the
 * style of zsim's DDR channel backend:
 *
 *  - a page policy (open / close / adaptive) decides whether the row
 *    buffer stays open after each column access;
 *  - precharge respects tRAS (the row must stay open long enough
 *    after its ACT) and tWR (write recovery after the last write
 *    burst), and costs tRP before the next ACT;
 *  - the four-activate window (at most 4 ACTs per tFAW interval, a
 *    power-delivery limit) is accounted with a channel-wide
 *    BandwidthMeter whose bucket width is one tFAW window and where
 *    every ACT reserves a quarter window — the meter's own
 *    fill <= width invariant then *is* the ACT-count bound, and the
 *    bucketed backfill stays stable under the out-of-order
 *    reservation starts that sank the naive next-ACT-time scalar
 *    (see sim/bandwidth_meter.hh). Window-induced delay is counted
 *    as an ACT stall;
 *  - refresh is scheduled lazily per bank exactly like the meter
 *    backend (bounded catch-up, refresh closes the row);
 *  - the bank/row/column split is configurable (DramAddrMapKind),
 *    decoded through the shared DramAddrMap.
 *
 * Queueing still rides on the per-bank BandwidthMeter, and — key to
 * stability — the bank meter only ever reserves the *constant* part
 * of an access (precharge + activate + CAS + burst). Bank-state
 * recovery waits (tRAS/tWR/precharge completion) and ACT-window
 * stalls are latency adders on top, computed as saturating
 * differences against the access's own start tick and capped at one
 * worst-case bank turnaround (tRAS + tWR + tRP): reservations arrive
 * out of time order, so an anchor left by a logically-later access
 * must not charge an unbounded wait to an earlier one, and folding
 * wait time back into reserved service would let the backlog feed on
 * itself (the exact instability BandwidthMeter exists to avoid).
 */

#ifndef ABNDP_MEM_DDR_BACKEND_HH
#define ABNDP_MEM_DDR_BACKEND_HH

#include <cstdint>
#include <vector>

#include "mem/address_map.hh"
#include "mem/mem_backend.hh"
#include "sim/bandwidth_meter.hh"

namespace abndp
{

/** Per-bank-state DDR channel (the local vault of one NDP unit). */
class DdrBackend : public MemBackend
{
  public:
    DdrBackend(const SystemConfig &cfg, EnergyAccount &energy,
               UnitId unit = 0, const FaultModel *faults = nullptr);

    Tick access(Addr addr, std::uint32_t bytes, bool isWrite,
                bool cacheRegion, Tick start) override;

    void resetState() override;

    /** Same refresh-floor discard rule as MeterBackend. */
    void discardBefore(Tick tb) override;

    void auditBandwidth(check::CheckContext &ctx) const override;

    /**
     * Audit the four-activate window: the ACT meter reserves one
     * quarter window per ACT with a bucket one tFAW window wide, so
     * a bucket fill above the width would mean five ACTs were packed
     * into one window. Fills must also be whole quarters — nothing
     * but ACT slots may ever be poured into this meter.
     */
    void auditTiming(check::CheckContext &ctx) const override;

    /** Adds rowHits/actStalls and per-bank vectors to the base set. */
    void regStats(obs::StatNode &node) const override;

    std::uint64_t actStalls() const override
    {
        return nActStalls.value();
    }

  private:
    struct Bank
    {
        BandwidthMeter meter;
        std::uint64_t openRow = ~0ull;
        bool rowOpen = false;
        /** Next scheduled refresh for this bank. */
        Tick nextRefresh = 0;
        /** Latest assigned time of this bank's ACTs (tRAS anchor). */
        Tick lastActAt = 0;
        /** End of this bank's last write burst (tWR anchor). */
        Tick writeEnd = 0;
        /** Auto-precharge completion after a closed access. */
        Tick bankReadyAt = 0;
        /** Adaptive page policy: saturating row-hit history [0, 3].
         *  Hits credit, conflict misses debit, and a miss that
         *  re-activates the row the policy just closed (a wasted
         *  close, see lastClosedRow) credits — the recovery path
         *  back to open-page once hits have stopped happening. */
        std::uint32_t openScore = 2;
        /** Row closed by the most recent policy precharge. */
        std::uint64_t lastClosedRow = ~0ull;
        // Per-bank observational counters (stats vectors only).
        std::uint64_t rowHits = 0;
        std::uint64_t rowMisses = 0;
        std::uint64_t actStallCount = 0;
        std::uint64_t refreshCount = 0;
    };

    /** Spread initial per-bank refresh deadlines round-robin. */
    void staggerRefresh();

    std::vector<Bank> banks;
    DramAddrMap amap;
    PagePolicy policy;
    Tick tRas;
    Tick tWr;

    /**
     * Channel-wide four-activate window accounting: each ACT
     * reserves actQuarter ticks in a meter whose buckets span
     * 4 * actQuarter >= tFAW. actQuarter == 0 (tFAW disabled)
     * bypasses the meter entirely.
     */
    Tick actQuarter;
    BandwidthMeter actMeter;

    stats::Counter nActStalls;
};

} // namespace abndp

#endif // ABNDP_MEM_DDR_BACKEND_HH
