#include "mem/ddr_backend.hh"

#include <algorithm>

#include "check/check_context.hh"

namespace abndp
{

namespace
{

/** a - b saturating at zero (anchors may postdate the start tick). */
constexpr Tick
satSub(Tick a, Tick b)
{
    return a > b ? a - b : 0;
}

/** One quarter of the four-activate window, rounded up so four
 *  reservations always span at least the configured tFAW. */
Tick
quarterWindow(double tFawNs)
{
    auto faw = static_cast<Tick>(tFawNs * ticksPerNs);
    return (faw + 3) / 4;
}

} // namespace

DdrBackend::DdrBackend(const SystemConfig &cfg, EnergyAccount &energy,
                       UnitId unit, const FaultModel *faults)
    : MemBackend(cfg, energy, unit, faults),
      banks(cfg.dram.banks),
      amap(cfg.dram, cfg.memBytesPerUnit),
      policy(cfg.dram.pagePolicy),
      tRas(static_cast<Tick>(cfg.dram.tRasNs * ticksPerNs)),
      tWr(static_cast<Tick>(cfg.dram.tWrNs * ticksPerNs)),
      actQuarter(quarterWindow(cfg.dram.tFawNs)),
      actMeter(std::max<Tick>(4 * actQuarter, 1))
{
    staggerRefresh();
}

void
DdrBackend::staggerRefresh()
{
    // Banks refresh round-robin so no refresh lands exactly at t = 0.
    for (std::size_t b = 0; b < banks.size(); ++b)
        banks[b].nextRefresh = tRefi * (b + 1) / banks.size();
}

Tick
DdrBackend::access(Addr addr, std::uint32_t bytes, bool isWrite,
                   bool cacheRegion, Tick start)
{
    DramCoord c = amap.decode(addr);
    auto &bank = banks[c.bank];

    // Lazy per-bank refresh, exactly as in the meter backend; a
    // refresh precharges the bank (closes the row buffer).
    if (refreshOn && bank.nextRefresh <= start) {
        std::uint32_t catchup = 0;
        while (bank.nextRefresh <= start && catchup < refreshCatchupMax) {
            bank.meter.reserve(bank.nextRefresh, tRfc);
            bank.nextRefresh += tRefi;
            ++nRefreshes;
            ++bank.refreshCount;
            ++catchup;
        }
        if (bank.nextRefresh <= start)
            bank.nextRefresh = start + tRefi;
        bank.rowOpen = false;
        bank.openRow = ~0ull;
    }

    // The bank meter reserves only the constant command footprint
    // (core + burst); bank-state recovery waits and ACT-window
    // stalls accumulate in extra as pure latency. Recovery anchors
    // are saturating against this access's start and capped at one
    // worst-case bank turnaround, so an anchor written by a
    // logically-later access (reservations arrive out of time
    // order) cannot charge an unbounded wait (see file comment).
    Tick core;
    Tick extra = 0;
    std::uint32_t keepScore;
    bool row_miss = !(bank.rowOpen && bank.openRow == c.row);
    if (row_miss) {
        ++nRowMisses;
        ++bank.rowMisses;
        Tick pre;
        Tick recovery;
        // Misses decide the page policy with the score *before* this
        // miss is charged: the access's own conflict must not be able
        // to close the row it just opened (the fresh-bank score of 2
        // would otherwise dead-end at "always closed", since hits can
        // only happen to a row left open).
        keepScore = bank.openScore;
        if (bank.rowOpen) {
            // Precharge now: wait out tRAS since the row's ACT and
            // tWR since the last write burst, then pay tRP.
            pre = tRp;
            recovery = std::max(satSub(bank.lastActAt + tRas, start),
                                satSub(bank.writeEnd + tWr, start));
            if (bank.openScore > 0)
                --bank.openScore;
        } else {
            // Auto-precharged earlier; it may still be completing.
            pre = 0;
            recovery = satSub(bank.bankReadyAt, start);
            if (c.row == bank.lastClosedRow) {
                // Wasted close: this access would have hit the row
                // the policy threw away — the strongest signal to
                // drift back toward open-page.
                if (bank.openScore < 3)
                    ++bank.openScore;
            } else if (bank.openScore > 0) {
                --bank.openScore;
            }
        }
        recovery = std::min(recovery, tRas + tWr + tRp);

        // Four-activate window: claim one of the four ACT slots per
        // tFAW bucket at or after the earliest command time.
        Tick actReady = start + recovery + pre;
        Tick actAt = actReady;
        if (actQuarter > 0)
            actAt = actMeter.reserve(actReady, actQuarter);
        if (actAt > actReady) {
            ++nActStalls;
            ++bank.actStallCount;
        }
        extra = recovery + (actAt - actReady);
        bank.lastActAt = std::max(bank.lastActAt, actAt);
        bank.openRow = c.row;
        bank.rowOpen = true;
        core = pre + tRcd + tCas;
    } else {
        ++bank.rowHits;
        core = tCas;
        // Hits decide with the score *after* the credit, so fresh
        // locality counts immediately.
        if (bank.openScore < 3)
            ++bank.openScore;
        keepScore = bank.openScore;
    }

    auto burst = static_cast<Tick>(ticksPerByte * bytes);
    if (faultsActive)
        applyFaults(core, burst, start);
    Tick begin = bank.meter.reserve(start, core + burst);
    Tick queue = begin - start;
    waitNs.sample(queue ? static_cast<double>(queue) / ticksPerNs : 0.0);
    Tick end = begin + core + burst + extra;

    if (isWrite) {
        ++nWrites;
        bank.writeEnd = std::max(bank.writeEnd, end);
    } else {
        ++nReads;
    }

    // Page policy: does the row buffer stay open for the next access?
    bool leave_open = policy == PagePolicy::Open
        || (policy == PagePolicy::Adaptive && keepScore >= 2);
    if (!leave_open) {
        // Auto-precharge: the bank is ready for its next ACT once the
        // burst (plus write recovery) and the precharge complete.
        bank.lastClosedRow = bank.openRow;
        bank.rowOpen = false;
        bank.openRow = ~0ull;
        bank.bankReadyAt = std::max(bank.bankReadyAt,
                                    end + (isWrite ? tWr : 0) + tRp);
    }
    energy.addDramAccess(bytes, row_miss, cacheRegion);

    return queue + core + burst + extra;
}

void
DdrBackend::auditBandwidth(check::CheckContext &ctx) const
{
    for (std::size_t b = 0; b < banks.size(); ++b)
        check::checkBucketFill(ctx, "ddr bank", b,
                               banks[b].meter.maxBucketFill(),
                               banks[b].meter.bucketWidth());
}

void
DdrBackend::auditTiming(check::CheckContext &ctx) const
{
    if (actQuarter == 0)
        return; // tFAW disabled: the ACT meter is never reserved
    Tick fill = actMeter.maxBucketFill();
    ctx.require(fill <= actMeter.bucketWidth(), "ddr channel ", unit,
                ": ACT window overbooked — bucket fill ", fill,
                " exceeds ", actMeter.bucketWidth(),
                " (five ACTs within one tFAW window)");
    ctx.require(fill % actQuarter == 0, "ddr channel ", unit,
                ": ACT meter fill ", fill,
                " is not a whole number of quarter windows (",
                actQuarter, " ticks) — something other than ACT",
                " slots was poured into the ACT meter");
}

void
DdrBackend::regStats(obs::StatNode &node) const
{
    MemBackend::regStats(node);
    node.addValue("rowHits", [this] {
        return static_cast<double>(rowHits());
    }, obs::StatKind::Counter, true);
    node.addCounter("actStalls", &nActStalls);

    std::vector<std::string> names(banks.size());
    for (std::size_t b = 0; b < banks.size(); ++b)
        names[b] = std::to_string(b);
    obs::StatNode &bn = node.child("bank");
    bn.addVector("rowHits", names, [this](std::size_t b) {
        return static_cast<double>(banks[b].rowHits);
    }, obs::StatKind::Counter, true);
    bn.addVector("rowMisses", names, [this](std::size_t b) {
        return static_cast<double>(banks[b].rowMisses);
    }, obs::StatKind::Counter, true);
    bn.addVector("actStalls", names, [this](std::size_t b) {
        return static_cast<double>(banks[b].actStallCount);
    }, obs::StatKind::Counter, true);
    bn.addVector("refreshes", names, [this](std::size_t b) {
        return static_cast<double>(banks[b].refreshCount);
    }, obs::StatKind::Counter, true);
}

void
DdrBackend::discardBefore(Tick tb)
{
    for (auto &bank : banks) {
        Tick floor = refreshOn && bank.nextRefresh < tb
            ? bank.nextRefresh : tb;
        bank.meter.discardBefore(floor);
    }
    // ACT reservations start at or after their access's start tick,
    // so the caller's time fence applies to the ACT meter unchanged.
    actMeter.discardBefore(tb);
}

void
DdrBackend::resetState()
{
    for (auto &bank : banks) {
        bank.meter.reset();
        bank.openRow = ~0ull;
        bank.rowOpen = false;
        bank.lastActAt = 0;
        bank.writeEnd = 0;
        bank.bankReadyAt = 0;
        bank.openScore = 2;
        bank.lastClosedRow = ~0ull;
        // Stat counters (channel and per-bank) survive, as in the
        // meter backend: resetState forgets timing state only.
    }
    actMeter.reset();
    staggerRefresh();
}

} // namespace abndp
