#include "mem/dram.hh"

#include <bit>

#include "check/check_context.hh"

namespace abndp
{

DramChannel::DramChannel(const SystemConfig &cfg, EnergyAccount &energy,
                         UnitId unit, const FaultModel *faults)
    : energy(energy),
      faults(faults),
      unit(unit),
      faultRng(mix64(cfg.seed ^ (0x7000ull + unit))),
      banks(cfg.dram.banks),
      rowBytes(cfg.dram.rowBytes),
      tCas(static_cast<Tick>(cfg.dram.tCasNs * ticksPerNs)),
      tRcd(static_cast<Tick>(cfg.dram.tRcdNs * ticksPerNs)),
      tRp(static_cast<Tick>(cfg.dram.tRpNs * ticksPerNs)),
      tRefi(static_cast<Tick>(cfg.dram.tRefiNs * ticksPerNs)),
      tRfc(static_cast<Tick>(cfg.dram.tRfcNs * ticksPerNs)),
      refreshOn(cfg.dram.refreshEnabled),
      // DDR signaling: busBits wide, two transfers per bus clock.
      ticksPerByte(8.0 * 1000.0
                   / (cfg.dram.busBits * 2.0 * cfg.dram.busGHz))
{
    rowPow2 = rowBytes > 0 && (rowBytes & (rowBytes - 1)) == 0;
    if (rowPow2)
        rowShift = static_cast<std::uint32_t>(
            std::countr_zero(static_cast<std::uint64_t>(rowBytes)));
    const std::uint64_t nb = banks.size();
    bankPow2 = nb > 0 && (nb & (nb - 1)) == 0;
    bankMask = nb - 1;
    faultsActive = faults && faults->anyInjector();
    staggerRefresh();
}

void
DramChannel::staggerRefresh()
{
    // Banks refresh round-robin so no refresh lands exactly at t = 0.
    for (std::size_t b = 0; b < banks.size(); ++b)
        banks[b].nextRefresh = tRefi * (b + 1) / banks.size();
}

Tick
DramChannel::access(Addr addr, std::uint32_t bytes, bool isWrite,
                    bool cacheRegion, Tick start)
{
    std::uint64_t row = rowPow2 ? addr >> rowShift : addr / rowBytes;
    auto &bank = banks[bankPow2 ? row & bankMask : row % banks.size()];

    // Lazy per-bank refresh: account the refreshes due before this
    // access; long idle gaps only charge a bounded backlog (the rest is
    // hidden in idle time anyway). Refresh closes the row buffer.
    if (refreshOn && bank.nextRefresh <= start) {
        int catchup = 0;
        while (bank.nextRefresh <= start && catchup < 4) {
            bank.meter.reserve(bank.nextRefresh, tRfc);
            bank.nextRefresh += tRefi;
            ++nRefreshes;
            ++catchup;
        }
        if (bank.nextRefresh <= start)
            bank.nextRefresh = start + tRefi;
        bank.openRow = ~0ull;
    }

    Tick core;
    bool row_miss = bank.openRow != row;
    if (row_miss) {
        ++nRowMisses;
        core = tRp + tRcd + tCas;
        bank.openRow = row;
    } else {
        core = tCas;
    }

    auto burst = static_cast<Tick>(ticksPerByte * bytes);
    if (faultsActive) {
        // Injected DRAM error-retry: this access hits an ECC
        // correction/retry cycle on its bank and pays a latency adder.
        double p = faults->eccRetryProb();
        if (p > 0.0 && faultRng.chance(p)) {
            ++nEccRetries;
            core += faults->eccRetryTicks();
        }
        // Straggler bandwidth derating stretches the channel's service
        // time (exact no-op at the default slowdown of 1.0).
        double slow = faults->bandwidthSlowdown(unit, start);
        if (slow != 1.0) {
            core = static_cast<Tick>(core * slow);
            burst = static_cast<Tick>(burst * slow);
        }
    }
    Tick begin = bank.meter.reserve(start, core + burst);
    Tick queue = begin - start;
    // Skip the int-to-double divide for uncontended accesses; 0/1000
    // is exactly 0.0, so the sampled distribution is unchanged.
    waitNs.sample(queue ? static_cast<double>(queue) / ticksPerNs : 0.0);

    if (isWrite)
        ++nWrites;
    else
        ++nReads;
    energy.addDramAccess(bytes, row_miss, cacheRegion);

    return queue + core + burst;
}

void
DramChannel::auditBandwidth(check::CheckContext &ctx) const
{
    for (std::size_t b = 0; b < banks.size(); ++b)
        check::checkBucketFill(ctx, "dram bank", b,
                               banks[b].meter.maxBucketFill(),
                               banks[b].meter.bucketWidth());
}

void
DramChannel::discardBefore(Tick tb)
{
    for (auto &bank : banks) {
        Tick floor = refreshOn && bank.nextRefresh < tb
            ? bank.nextRefresh : tb;
        bank.meter.discardBefore(floor);
    }
}

void
DramChannel::resetState()
{
    for (auto &bank : banks) {
        bank.meter.reset();
        bank.openRow = ~0ull;
    }
    staggerRefresh();
}

} // namespace abndp
