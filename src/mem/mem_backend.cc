#include "mem/mem_backend.hh"

#include "check/check_context.hh"
#include "mem/ddr_backend.hh"
#include "mem/meter_backend.hh"

namespace abndp
{

MemBackend::MemBackend(const SystemConfig &cfg, EnergyAccount &energy,
                       UnitId unit, const FaultModel *faults)
    : energy(energy),
      faults(faults),
      unit(unit),
      faultRng(mix64(cfg.seed ^ (0x7000ull + unit))),
      faultsActive(faults && faults->anyInjector()),
      tCas(static_cast<Tick>(cfg.dram.tCasNs * ticksPerNs)),
      tRcd(static_cast<Tick>(cfg.dram.tRcdNs * ticksPerNs)),
      tRp(static_cast<Tick>(cfg.dram.tRpNs * ticksPerNs)),
      tRefi(static_cast<Tick>(cfg.dram.tRefiNs * ticksPerNs)),
      tRfc(static_cast<Tick>(cfg.dram.tRfcNs * ticksPerNs)),
      refreshOn(cfg.dram.refreshEnabled),
      refreshCatchupMax(cfg.dram.refreshCatchupMax),
      // DDR signaling: busBits wide, two transfers per bus clock.
      ticksPerByte(8.0 * 1000.0
                   / (cfg.dram.busBits * 2.0 * cfg.dram.busGHz))
{
}

void
MemBackend::auditTiming(check::CheckContext &) const
{
}

void
MemBackend::regStats(obs::StatNode &node) const
{
    node.addCounter("reads", &nReads);
    node.addCounter("writes", &nWrites);
    node.addCounter("rowMisses", &nRowMisses);
    node.addCounter("refreshes", &nRefreshes);
    node.addCounter("eccRetries", &nEccRetries);
    node.addDistribution("queueWaitNs", &waitNs);
}

std::unique_ptr<MemBackend>
makeMemBackend(const SystemConfig &cfg, EnergyAccount &energy,
               UnitId unit, const FaultModel *faults)
{
    switch (cfg.dram.backend) {
      case MemBackendKind::Meter:
        return std::make_unique<MeterBackend>(cfg, energy, unit, faults);
      case MemBackendKind::Ddr:
        return std::make_unique<DdrBackend>(cfg, energy, unit, faults);
    }
    panic("unknown memory backend kind");
}

} // namespace abndp
