/**
 * @file
 * The default memory backend: per-bank bucketed bandwidth meters plus
 * an open-row bit (HBM-like, Table 1).
 *
 * Each NDP unit owns one channel with several independent banks. Banks
 * track an open row; accesses pay tCAS on a row hit or tRP + tRCD +
 * tCAS on a row miss, plus the data burst, and queue behind earlier
 * accesses to the same bank through the bank's BandwidthMeter. This is
 * the historical DramChannel model, extracted verbatim behind the
 * MemBackend seam — it is bit-identical to the pre-seam simulator
 * (the golden-metrics suite holds it to that).
 */

#ifndef ABNDP_MEM_METER_BACKEND_HH
#define ABNDP_MEM_METER_BACKEND_HH

#include <cstdint>
#include <vector>

#include "mem/address_map.hh"
#include "mem/mem_backend.hh"
#include "sim/bandwidth_meter.hh"

namespace abndp
{

/** Meter-based DRAM channel (the local vault of one NDP unit). */
class MeterBackend : public MemBackend
{
  public:
    MeterBackend(const SystemConfig &cfg, EnergyAccount &energy,
                 UnitId unit = 0, const FaultModel *faults = nullptr);

    Tick access(Addr addr, std::uint32_t bytes, bool isWrite,
                bool cacheRegion, Tick start) override;

    void resetState() override;

    /**
     * Retire bank-meter pages unreachable after the barrier at @p tb.
     *
     * Every access() reservation walks forward from its start tick,
     * and after a bulk-synchronous barrier all future starts are
     * >= @p tb — except the lazy refresh catch-up, which backdates
     * reservations to bank.nextRefresh. nextRefresh is monotone, so
     * flooring each bank's discard at min(tb, nextRefresh) keeps the
     * retirement exact even for a bank whose refresh schedule lags
     * the barrier arbitrarily far behind.
     */
    void discardBefore(Tick tb) override;

    void auditBandwidth(check::CheckContext &ctx) const override;

  private:
    /** Spread initial per-bank refresh deadlines round-robin. */
    void staggerRefresh();

    struct Bank
    {
        BandwidthMeter meter;
        std::uint64_t openRow = ~0ull;
        /** Next scheduled refresh for this bank. */
        Tick nextRefresh = 0;
    };

    std::vector<Bank> banks;
    // Shared decode arithmetic (pow2 shift/mask fast path): global row
    // number = addr / rowBytes, bank = row % banks — consecutive rows
    // rotate across banks, preserving row locality for streams.
    Pow2Split rowSplit;
    Pow2Split bankSplit;
};

} // namespace abndp

#endif // ABNDP_MEM_METER_BACKEND_HH
