#include "driver/experiment.hh"

#include "common/logging.hh"
#include "core/ndp_system.hh"
#include "host/host_system.hh"

namespace abndp
{

RunMetrics
runExperiment(const SystemConfig &base, Design d, const WorkloadSpec &spec,
              const ExperimentOptions &opts)
{
    SystemConfig cfg = applyDesign(base, d);
    if (opts.cacheStyle)
        cfg.traveller.style = *opts.cacheStyle;
    if (opts.fault)
        cfg.fault = *opts.fault;
    auto wl = makeWorkload(spec);

    RunMetrics metrics;
    if (d == Design::H) {
        if (cfg.serving.enabled())
            fatal("design H cannot run serving mode: the open-loop "
                  "driver lives in NdpSystem (pick an NDP design: B, "
                  "Sm, Sl, Sh, C or O)");
        HostSystem host(cfg);
        metrics = host.run(*wl);
    } else {
        NdpSystem sys(cfg);
        metrics = sys.run(*wl);
    }

    if (opts.verify && !wl->verify()) {
        if (opts.fatalOnVerifyFailure)
            fatal("workload ", spec.name, " failed verification under ",
                  designName(d));
        warn("workload ", spec.name, " failed verification under ",
             designName(d));
    }
    return metrics;
}

Design
designFromName(const std::string &name)
{
    for (Design d : allDesigns())
        if (name == designName(d))
            return d;
    fatal("unknown design '", name,
          "' (expected H, B, Sm, Sl, Sh, C, O, HLB or HLB-mig)");
}

std::string
designToken(Design d)
{
    std::string tok = designName(d);
    for (char &c : tok)
        if (c == '-')
            c = '_';
    return tok;
}

const std::vector<Design> &
allDesigns()
{
    static const std::vector<Design> designs{
        Design::H, Design::B, Design::Sm, Design::Sl,
        Design::Sh, Design::C, Design::O, Design::Hlb, Design::HlbM};
    return designs;
}

const std::vector<Design> &
ndpDesigns()
{
    static const std::vector<Design> designs{
        Design::B, Design::Sm, Design::Sl, Design::Sh,
        Design::C, Design::O, Design::Hlb, Design::HlbM};
    return designs;
}

} // namespace abndp
