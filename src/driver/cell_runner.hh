/**
 * @file
 * Parallel (design, workload) grid runner.
 *
 * Every cell of a benchmark grid is an independent, share-nothing
 * simulator instance, so cells parallelize perfectly across host
 * threads. This runner fans a vector of cells over a small thread pool
 * and lands each result at its cell's index, so the output order — and
 * therefore every table or JSON line built from it — is independent of
 * the thread count and of completion order. Each cell's simulation is
 * seeded purely by its own config, so the per-cell metrics are
 * bit-identical whether the grid runs on 1 thread or 64.
 */

#ifndef ABNDP_DRIVER_CELL_RUNNER_HH
#define ABNDP_DRIVER_CELL_RUNNER_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "driver/experiment.hh"

namespace abndp
{

/** One independent (design, workload) cell of a benchmark grid. */
struct CellSpec
{
    Design design = Design::B;
    WorkloadSpec workload;
    /** Per-cell options (verify, cache-style / fault overrides). */
    ExperimentOptions opts;
    /**
     * Full config override for sweeps whose grid axis is a config knob
     * (camp count, mapping, cache ratio); replaces the shared base.
     */
    std::optional<SystemConfig> config;
};

/**
 * Progress callback: invoked after each cell completes, serialized
 * under the runner's lock, with (cells done so far, total cells, index
 * of the cell that just finished).
 */
using CellProgressFn =
    std::function<void(std::size_t, std::size_t, std::size_t)>;

/**
 * Run all @p cells on top of @p base and return their metrics in cell
 * order. @p threads = 0 means hardware_concurrency(); the pool size is
 * clamped to the cell count, and threads <= 1 runs inline on the
 * calling thread. fatal()/panic() inside a cell aborts the process, as
 * in a sequential run.
 */
std::vector<RunMetrics> runCells(const SystemConfig &base,
                                 const std::vector<CellSpec> &cells,
                                 std::uint32_t threads,
                                 const CellProgressFn &progress = {});

/** Threads to use by default: all hardware threads, at least 1. */
std::uint32_t defaultThreads();

} // namespace abndp

#endif // ABNDP_DRIVER_CELL_RUNNER_HH
