#include "driver/cell_runner.hh"

#include <algorithm>
#include <mutex>
#include <thread>

namespace abndp
{

std::uint32_t
defaultThreads()
{
    return std::max(1u, std::thread::hardware_concurrency());
}

std::vector<RunMetrics>
runCells(const SystemConfig &base, const std::vector<CellSpec> &cells,
         std::uint32_t threads, const CellProgressFn &progress)
{
    std::vector<RunMetrics> results(cells.size());
    if (cells.empty())
        return results;
    if (threads == 0)
        threads = defaultThreads();

    auto runOne = [&base](const CellSpec &cell) {
        return runExperiment(cell.config ? *cell.config : base,
                             cell.design, cell.workload, cell.opts);
    };

    if (threads <= 1) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            results[i] = runOne(cells[i]);
            if (progress)
                progress(i + 1, cells.size(), i);
        }
        return results;
    }

    std::mutex lock;
    std::size_t nextCell = 0;
    std::size_t doneCells = 0;

    auto worker = [&] {
        while (true) {
            std::size_t idx;
            {
                std::lock_guard<std::mutex> guard(lock);
                if (nextCell >= cells.size())
                    return;
                idx = nextCell++;
            }
            RunMetrics m = runOne(cells[idx]);
            {
                std::lock_guard<std::mutex> guard(lock);
                results[idx] = std::move(m);
                ++doneCells;
                if (progress)
                    progress(doneCells, cells.size(), idx);
            }
        }
    };

    std::vector<std::thread> pool;
    auto poolSize = std::min<std::size_t>(threads, cells.size());
    pool.reserve(poolSize);
    for (std::size_t i = 0; i < poolSize; ++i)
        pool.emplace_back(worker);
    for (auto &t : pool)
        t.join();
    return results;
}

} // namespace abndp
