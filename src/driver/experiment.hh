/**
 * @file
 * Experiment driver: runs one (design, workload) pair and returns the
 * metrics every benchmark harness consumes. This is the top-level entry
 * point of the public API (see examples/quickstart.cc).
 */

#ifndef ABNDP_DRIVER_EXPERIMENT_HH
#define ABNDP_DRIVER_EXPERIMENT_HH

#include <optional>
#include <string>
#include <vector>

#include "common/config.hh"
#include "core/metrics.hh"
#include "workloads/factory.hh"

namespace abndp
{

/** Options for one experiment run. */
struct ExperimentOptions
{
    /** Check workload results against the sequential reference. */
    bool verify = true;
    /** fatal() if verification fails (otherwise warn). */
    bool fatalOnVerifyFailure = true;
    /**
     * Override the data-cache style after applyDesign() (the Figure-13
     * comparison swaps the Traveller Cache for its alternatives while
     * keeping the O scheduling policy).
     */
    std::optional<CacheStyle> cacheStyle;
    /**
     * Override the fault-injection configuration after applyDesign()
     * (bench_resilience sweeps fault points over a shared base config).
     * The host-only design H models no NDP hardware and ignores it.
     */
    std::optional<FaultConfig> fault;
};

/**
 * Run @p spec under design @p d on top of @p base (Table-1 defaults plus
 * any sweeps applied by the caller). @p base is adjusted per Table 2 via
 * applyDesign() internally.
 */
RunMetrics runExperiment(const SystemConfig &base, Design d,
                         const WorkloadSpec &spec,
                         const ExperimentOptions &opts = {});

/**
 * Parse a design name ("H", "B", "Sm", "Sl", "Sh", "C", "O", plus the
 * "HLB" / "HLB-mig" extensions) as printed by designName(); fatal()
 * with the valid set on anything else. Shared by every command-line
 * front end.
 */
Design designFromName(const std::string &name);

/**
 * designName() restricted to identifier characters ("HLB-mig" becomes
 * "HLB_mig"): gtest parameterized-test labels and similar contexts
 * reject '-'.
 */
std::string designToken(Design d);

/** All designs: Table 2 (H, B, Sm, Sl, Sh, C, O) + HLB, HLB-mig. */
const std::vector<Design> &allDesigns();

/** The NDP designs (without the host-only H), incl. the HLB family. */
const std::vector<Design> &ndpDesigns();

} // namespace abndp

#endif // ABNDP_DRIVER_EXPERIMENT_HH
