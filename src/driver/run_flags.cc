#include "driver/run_flags.hh"

#include "common/logging.hh"
#include "driver/cell_runner.hh"

namespace abndp
{

RunFlags
parseRunFlags(const CliFlags &flags, std::uint32_t threadsDefault)
{
    RunFlags rf;
    rf.threads = static_cast<std::uint32_t>(flags.getUint(
        "threads",
        threadsDefault > 0 ? threadsDefault : defaultThreads()));
    rf.traceOut = flags.getString("trace-out", "");
    rf.statsOut = flags.getString("stats-out", "");
    rf.statsInterval = flags.getUint("stats-interval", 0);
    rf.memBackend = flags.getString("mem-backend", "");
    return rf;
}

void
applyRunFlags(const RunFlags &rf, SystemConfig &cfg,
              const std::string &tag, bool multiCell)
{
    if (!rf.traceOut.empty())
        cfg.traceOut =
            tag.empty() ? rf.traceOut : tagPath(rf.traceOut, tag);
    if (!rf.statsOut.empty())
        cfg.statsOut =
            tag.empty() ? rf.statsOut : tagPath(rf.statsOut, tag);
    cfg.statsInterval = rf.statsInterval;
    if (!rf.memBackend.empty())
        cfg.dram.backend = memBackendFromName(rf.memBackend);
    if (multiCell && rf.statsInterval > 0 && rf.statsOut.empty())
        fatal("--stats-interval under a parallel grid requires "
              "--stats-out (per-cell interval dumps cannot share "
              "stdout)");
}

} // namespace abndp
