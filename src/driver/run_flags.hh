/**
 * @file
 * Shared run command-line flags. Every front end (examples, benches,
 * tools) understands the same set — --threads, --trace-out,
 * --stats-out, --stats-interval, --mem-backend — and applies them to
 * a SystemConfig the same way; this helper is the single copy of that
 * parsing and wiring (it used to be duplicated per driver).
 */

#ifndef ABNDP_DRIVER_RUN_FLAGS_HH
#define ABNDP_DRIVER_RUN_FLAGS_HH

#include <cstdint>
#include <string>

#include "common/cli.hh"
#include "common/config.hh"

namespace abndp
{

/** Parsed values of the shared run-output flags. */
struct RunFlags
{
    /** Worker threads for grid front ends (--threads). */
    std::uint32_t threads = 1;
    /** Perfetto trace JSON path ("" = tracing off; --trace-out). */
    std::string traceOut;
    /** Interval-stats output path ("" = stdout; --stats-out). */
    std::string statsOut;
    /** Interval-stats period in epochs (0 = off; --stats-interval). */
    std::uint64_t statsInterval = 0;
    /**
     * Memory timing backend ("" = keep the config's default;
     * --mem-backend=meter|ddr). Parsed through memBackendFromName, so
     * an unknown name fatal()s with the valid set.
     */
    std::string memBackend;

    /** True if any observability output was requested. */
    bool
    anyOutput() const
    {
        return !traceOut.empty() || !statsOut.empty() ||
            statsInterval > 0;
    }
};

/**
 * Parse the shared flags out of @p flags. @p threadsDefault seeds
 * --threads; 0 (the default) means defaultThreads(), single-run front
 * ends pass 1.
 */
RunFlags parseRunFlags(const CliFlags &flags,
                       std::uint32_t threadsDefault = 0);

/**
 * Wire @p rf into @p cfg. A nonempty @p tag is inserted into the
 * output file names (tagPath), so multi-run front ends give every
 * cell its own file. @p multiCell declares that several cells may run
 * concurrently: interval stats then require --stats-out (fatal()
 * otherwise), because per-cell interval dumps cannot share stdout.
 */
void applyRunFlags(const RunFlags &rf, SystemConfig &cfg,
                   const std::string &tag = "", bool multiCell = false);

} // namespace abndp

#endif // ABNDP_DRIVER_RUN_FLAGS_HH
