/**
 * @file
 * Energy accounting for the ABNDP system.
 *
 * The breakdown follows Figure 7 of the paper: (1) NDP cores + SRAM
 * structures, (2) DRAM (memory + cache regions), (3) interconnect
 * transfers, (4) static energy. DRAM and interconnect constants come from
 * Table 1; SRAM constants are fixed CACTI-class numbers for the stated
 * structure sizes (see DESIGN.md substitution table).
 */

#ifndef ABNDP_ENERGY_ENERGY_HH
#define ABNDP_ENERGY_ENERGY_HH

#include <cstdint>

#include "common/config.hh"
#include "common/types.hh"

namespace abndp
{

/** Per-access SRAM energies (picojoules), CACTI-7-class values. */
struct SramEnergyConstants
{
    /** 64 kB 4-way L1-D / 32 kB L1-I access. */
    double l1AccessPj = 15.0;
    /** 4 kB FIFO prefetch buffer access. */
    double prefetchBufPj = 4.0;
    /** 160 kB Traveller Cache tag store lookup/update. */
    double tagStorePj = 8.0;
    /** Large (8 MB) pure-SRAM data cache access (Figure 13 variant). */
    double sramDataCachePj = 60.0;
    /** Per-core TLB lookup. */
    double tlbPj = 2.0;
};

/** Energy breakdown in picojoules, Figure-7 categories. */
struct EnergyBreakdown
{
    double coreSramPj = 0.0;
    double dramMemPj = 0.0;
    double dramCachePj = 0.0;
    double netPj = 0.0;
    double staticPj = 0.0;

    double
    total() const
    {
        return coreSramPj + dramMemPj + dramCachePj + netPj + staticPj;
    }

    double dram() const { return dramMemPj + dramCachePj; }

    EnergyBreakdown &
    operator+=(const EnergyBreakdown &o)
    {
        coreSramPj += o.coreSramPj;
        dramMemPj += o.dramMemPj;
        dramCachePj += o.dramCachePj;
        netPj += o.netPj;
        staticPj += o.staticPj;
        return *this;
    }
};

/**
 * Accumulates dynamic energy during a run and derives static energy at
 * finalization time. One instance per simulated system.
 */
class EnergyAccount
{
  public:
    explicit EnergyAccount(const SystemConfig &cfg) : cfg(&cfg) {}

    /** n executed instructions on NDP cores (371 pJ each, Section 6). */
    void
    addCoreInstructions(std::uint64_t n)
    {
        bd.coreSramPj += static_cast<double>(n) * cfg->corePjPerInstr;
    }

    /** One access to an L1 cache. */
    void addL1Access() { bd.coreSramPj += sram.l1AccessPj; }

    /** One access to the SRAM prefetch buffer. */
    void addPrefetchBufAccess() { bd.coreSramPj += sram.prefetchBufPj; }

    /** One lookup/update of the Traveller Cache SRAM tag store. */
    void addTagAccess() { bd.coreSramPj += sram.tagStorePj; }

    /** One per-core TLB lookup. */
    void addTlbAccess() { bd.coreSramPj += sram.tlbPj; }

    /** One access to the Figure-13 pure-SRAM data cache. */
    void addSramDataCacheAccess() { bd.coreSramPj += sram.sramDataCachePj; }

    /**
     * One DRAM access of @p bytes; @p rowMiss adds activate/precharge
     * energy; @p cacheRegion attributes the energy to the DRAM-cache
     * component of the Figure-7 breakdown.
     */
    void
    addDramAccess(std::uint32_t bytes, bool rowMiss, bool cacheRegion)
    {
        double pj = static_cast<double>(bytes) * 8.0 * cfg->dram.pjPerBitRw;
        if (rowMiss)
            pj += cfg->dram.pjActPre;
        (cacheRegion ? bd.dramCachePj : bd.dramMemPj) += pj;
    }

    /** One intra-stack crossbar traversal of @p bytes. */
    void
    addIntraTransfer(std::uint32_t bytes)
    {
        bd.netPj += static_cast<double>(bytes) * 8.0
            * cfg->net.intraPjPerBit;
    }

    /** @p hops inter-stack mesh hops of @p bytes each. */
    void
    addInterTransfer(std::uint32_t bytes, std::uint32_t hops)
    {
        bd.netPj += static_cast<double>(bytes) * 8.0 * hops
            * cfg->net.interPjPerBit;
    }

    /**
     * Compute static energy for a run of @p elapsed ticks: idle power of
     * every NDP core (163 uW each, Section 6) plus per-unit background
     * power (DRAM refresh/standby and always-on logic), integrated over
     * the run. With 1 tick = 1 ps, W * ticks = pJ.
     */
    void
    finalizeStatic(Tick elapsed)
    {
        double watts = cfg->coreIdleUw * 1e-6 * cfg->numCores()
            + cfg->staticMwPerUnit * 1e-3 * cfg->numUnits();
        bd.staticPj = watts * static_cast<double>(elapsed);
    }

    const EnergyBreakdown &breakdown() const { return bd; }

    void reset() { bd = EnergyBreakdown{}; }

  private:
    const SystemConfig *cfg;
    SramEnergyConstants sram;
    EnergyBreakdown bd;
};

} // namespace abndp

#endif // ABNDP_ENERGY_ENERGY_HH
