#include "workloads/graph_layout.hh"

namespace abndp
{

void
GraphLayout::setup(SimAllocator &alloc)
{
    const std::uint32_t n = graph->numVertices();
    recAddr = alloc.allocateArray(recBytes, n, placement);
    adjAddr.resize(n);
    for (std::uint32_t v = 0; v < n; ++v) {
        std::uint64_t bytes =
            static_cast<std::uint64_t>(graph->degree(v)) * edgeBytes;
        if (bytes == 0) {
            adjAddr[v] = invalidAddr;
            continue;
        }
        // Adjacency lives with its vertex (same home unit).
        adjAddr[v] = alloc.allocate(bytes, alloc.map().homeOf(recAddr[v]),
                                    cachelineBytes);
    }
}

void
GraphLayout::appendAdjacency(std::uint32_t v, TaskHint &hint) const
{
    if (adjAddr[v] == invalidAddr)
        return;
    hint.ranges.push_back(
        {adjAddr[v],
         static_cast<std::uint32_t>(
             static_cast<std::uint64_t>(graph->degree(v)) * edgeBytes)});
}

void
GraphLayout::buildVertexTaskHint(std::uint32_t v, TaskHint &hint,
                                 TaskArena &arena) const
{
    const auto neigh = graph->neighbors(v);
    hint.data.clear();
    hint.ranges.clear();
    hint.data.reserveIn(arena, 1 + neigh.size());
    hint.data.push_back(recAddr[v]);
    appendAdjacency(v, hint);
    for (std::uint32_t n : neigh)
        hint.data.push_back(recAddr[n]);
}

} // namespace abndp
