#include "workloads/sssp.hh"

#include <bit>
#include <queue>

#include "common/logging.hh"
#include "common/rng.hh"

namespace abndp
{

SsspWorkload::SsspWorkload(Graph graph_, std::uint32_t source,
                           std::uint64_t seed)
    : graph(std::move(graph_)),
      // 16-byte record: {distance, flags}; adjacency entries carry a
      // 4-byte index plus a 4-byte weight.
      layout(graph, 16, 8),
      source(source),
      seed(seed),
      dist(graph.numVertices(), inf),
      nextDist(graph.numVertices(), inf),
      enqueuedNext(graph.numVertices(), false)
{
    abndp_assert(source < graph.numVertices());
}

double
SsspWorkload::weight(std::uint32_t v, std::size_t edgeIdx) const
{
    // Deterministic per-edge weight in [1, 17).
    std::uint64_t h = mix64(seed ^ (static_cast<std::uint64_t>(v) << 32)
                            ^ (graph.edgeOffset(v) + edgeIdx));
    return 1.0 + static_cast<double>(h % 1024) / 64.0;
}

void
SsspWorkload::setup(SimAllocator &alloc)
{
    layout.setup(alloc);
}

Task
SsspWorkload::makeTask(std::uint32_t v, std::uint64_t ts) const
{
    Task t;
    t.timestamp = ts;
    t.arg = v;
    layout.buildVertexTaskHint(v, t.hint, hintArena);
    t.writes.push_back(layout.vertexAddr(v));
    t.computeInstrs = 6 + 4ull * graph.degree(v);
    return t;
}

void
SsspWorkload::emitInitialTasks(TaskSink &sink)
{
    dist[source] = 0.0;
    nextDist[source] = 0.0;
    sink.enqueueTask(makeTask(source, 0));
}

void
SsspWorkload::onBeginServing()
{
    // Dijkstra over the directed relaxation edges (each undirected edge
    // carries one deterministic weight per direction, exactly as the
    // batch algorithm relaxes it).
    refDist.assign(graph.numVertices(), inf);
    using Item = std::pair<double, std::uint32_t>;
    std::priority_queue<Item, std::vector<Item>, std::greater<Item>> pq;
    refDist[source] = 0.0;
    pq.push({0.0, source});
    while (!pq.empty()) {
        auto [d, v] = pq.top();
        pq.pop();
        if (d > refDist[v])
            continue;
        auto nbrs = graph.neighbors(v);
        for (std::size_t i = 0; i < nbrs.size(); ++i) {
            double cand = d + weight(v, i);
            if (cand < refDist[nbrs[i]]) {
                refDist[nbrs[i]] = cand;
                pq.push({cand, nbrs[i]});
            }
        }
    }
}

Task
SsspWorkload::makeQueryTask(std::uint64_t key, std::uint64_t seq)
{
    std::uint64_t slot = logQuery(key);
    abndp_assert(slot == seq, "served-log slot out of step: ", slot,
                 " vs ", seq);
    auto v = static_cast<std::uint32_t>(key);
    Task t;
    t.timestamp = 0;
    t.func = 1;
    t.arg = seq;
    // Same footprint as one batch relaxation of v, but built with
    // plain push_back (inline/heap tiers): serving tasks outlive every
    // epoch-arena generation, so the arena must not back them. No
    // writes: the oracle is read-only.
    t.hint.data.push_back(layout.vertexAddr(v));
    layout.appendAdjacency(v, t.hint);
    for (std::uint32_t n : graph.neighbors(v))
        t.hint.data.push_back(layout.vertexAddr(n));
    t.computeInstrs = 6 + 4ull * graph.degree(v);
    return t;
}

void
SsspWorkload::executeTask(const Task &task, TaskSink &sink)
{
    if (servingActive()) {
        std::uint64_t seq = task.arg;
        auto v = static_cast<std::uint32_t>(servedRecords()[seq].key);
        recordAnswer(seq, std::bit_cast<std::uint64_t>(refDist[v]));
        return;
    }
    auto v = static_cast<std::uint32_t>(task.arg);
    double dv = dist[v];
    abndp_assert(dv != inf);
    auto nbrs = graph.neighbors(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
        std::uint32_t n = nbrs[i];
        double cand = dv + weight(v, i);
        if (cand < nextDist[n]) {
            nextDist[n] = cand;
            if (!enqueuedNext[n]) {
                enqueuedNext[n] = true;
                enqueuedList.push_back(n);
                sink.enqueueTask(makeTask(n, task.timestamp + 1));
            }
        }
    }
}

void
SsspWorkload::endEpoch(std::uint64_t ts)
{
    (void)ts;
    dist = nextDist;
    for (std::uint32_t v : enqueuedList)
        enqueuedNext[v] = false;
    enqueuedList.clear();
    ++epochsRun;
}

bool
SsspWorkload::verifyServed() const
{
    // Independent reference: Bellman-Ford run to fixpoint (vs the
    // oracle's Dijkstra). Both accumulate each shortest path's dyadic
    // weights left to right, so agreement is exact and the comparison
    // can be bitwise.
    std::uint32_t n = graph.numVertices();
    std::vector<double> ref(n, inf);
    ref[source] = 0.0;
    bool changed = true;
    while (changed) {
        changed = false;
        for (std::uint32_t v = 0; v < n; ++v) {
            if (ref[v] == inf)
                continue;
            auto nbrs = graph.neighbors(v);
            for (std::size_t i = 0; i < nbrs.size(); ++i) {
                double cand = ref[v] + weight(v, i);
                if (cand < ref[nbrs[i]]) {
                    ref[nbrs[i]] = cand;
                    changed = true;
                }
            }
        }
    }
    for (const auto &rec : servedRecords()) {
        if (!rec.done)
            return false;
        auto v = static_cast<std::uint32_t>(rec.key);
        if (rec.answer != std::bit_cast<std::uint64_t>(ref[v]))
            return false;
    }
    return true;
}

bool
SsspWorkload::verify() const
{
    if (servingActive())
        return verifyServed();
    // Reference: bulk-synchronous Bellman-Ford with the same number of
    // relaxation rounds (exact for uncapped runs, which terminate when
    // no distance improves).
    std::uint32_t n = graph.numVertices();
    std::vector<double> ref(n, inf), nxt(n, inf);
    std::vector<bool> active(n, false);
    ref[source] = nxt[source] = 0.0;
    active[source] = true;
    for (std::uint64_t it = 0; it < epochsRun; ++it) {
        std::vector<bool> nextActive(n, false);
        for (std::uint32_t v = 0; v < n; ++v) {
            if (!active[v])
                continue;
            auto nbrs = graph.neighbors(v);
            for (std::size_t i = 0; i < nbrs.size(); ++i) {
                double cand = ref[v] + weight(v, i);
                if (cand < nxt[nbrs[i]]) {
                    nxt[nbrs[i]] = cand;
                    nextActive[nbrs[i]] = true;
                }
            }
        }
        ref = nxt;
        active = nextActive;
    }
    for (std::uint32_t v = 0; v < n; ++v)
        if (std::abs((ref[v] == inf ? -1.0 : ref[v])
                     - (dist[v] == inf ? -1.0 : dist[v])) > 1e-9)
            return false;
    return true;
}

} // namespace abndp
