/**
 * @file
 * Batched A* search over a power-law graph with ALT (A*, Landmarks,
 * Triangle inequality) heuristics, expressed as bulk-synchronous
 * wavefronts.
 *
 * Several independent (start, goal) queries run concurrently; each
 * timestamp expands, for every query, the vertices whose g-value
 * improved in the previous timestamp, pruning expansions whose
 * f = g + h cannot beat the query's best goal cost so far (bounds only
 * shrink, so pruning with the previous timestamp's bound stays exact).
 * A task reads its query's vertex records, the adjacency list, and the
 * shared landmark-distance tables for the ALT heuristic
 * h(n) = max_l |d(l, n) - d(l, goal)| — hot, read-only primary data.
 *
 * Serving mode (QueryService): an ALT heuristic oracle. Keys are
 * vertex ids; the goal is drawn deterministically from the query pool
 * (queries[key % numQueries].goal), and the task reads every
 * landmark's table entry for the vertex and the goal — 2 x 8 hot
 * table lines — and answers h(vertex, goal). verifyServed() replays
 * the log against the exact landmarkDist tables.
 */

#ifndef ABNDP_WORKLOADS_ASTAR_HH
#define ABNDP_WORKLOADS_ASTAR_HH

#include <cstdint>
#include <vector>

#include "workloads/graph.hh"
#include "workloads/query_service.hh"
#include "workloads/workload.hh"

namespace abndp
{

/** Bulk-synchronous multi-query ALT-A* on a graph. */
class AstarWorkload : public Workload, public QueryService
{
  public:
    /** Number of landmarks in the ALT heuristic. */
    static constexpr std::uint32_t numLandmarks = 8;

    /**
     * @param graph search graph (unit edge costs)
     * @param numQueries concurrent (start, goal) queries, endpoints
     *        drawn deterministically from @p seed
     */
    AstarWorkload(Graph graph, std::uint32_t numQueries = 16,
                  std::uint64_t seed = 11);

    std::string name() const override { return "astar"; }
    void setup(SimAllocator &alloc) override;
    void emitInitialTasks(TaskSink &sink) override;
    void executeTask(const Task &task, TaskSink &sink) override;
    void endEpoch(std::uint64_t ts) override;
    bool verify() const override;

    /** Cost of the best path found for one query (inf = none yet). */
    std::uint32_t goalCost(std::uint32_t q) const
    {
        return queries[q].g[queries[q].goal];
    }

    std::uint32_t numQueriesTotal() const
    {
        return static_cast<std::uint32_t>(queries.size());
    }

    /** The ALT heuristic (exposed for tests: must be admissible). */
    std::uint32_t heuristic(std::uint32_t vertex,
                            std::uint32_t goal) const;

    // QueryService: keys are vertex ids; answers are h(vertex, goal).
    std::uint64_t keySpace() const override
    {
        return graph.numVertices();
    }
    Task makeQueryTask(std::uint64_t key, std::uint64_t seq) override;
    bool verifyServed() const override;

  private:
    /** The goal paired with serving key @p key (from the query pool). */
    std::uint32_t
    servedGoalOf(std::uint64_t key) const
    {
        return queries[key % queries.size()].goal;
    }

    static constexpr std::uint32_t inf = ~0u;

    struct Query
    {
        std::uint32_t start = 0;
        std::uint32_t goal = 0;
        std::vector<std::uint32_t> g;
        std::vector<std::uint32_t> nextG;
        std::vector<bool> enqueuedNext;
        std::vector<std::uint32_t> enqueuedList;
        std::uint32_t bound = inf;
        std::uint32_t nextBound = inf;
        /** Per-query vertex state records in simulated memory. */
        std::vector<Addr> recAddr;
    };

    Task makeTask(std::uint32_t q, std::uint32_t vertex,
                  std::uint64_t ts) const;

    /** BFS distances from one vertex. */
    std::vector<std::uint32_t> bfsFrom(std::uint32_t from) const;

    Graph graph;

    /** Landmark tables: numLandmarks x vertices exact distances. */
    std::vector<std::vector<std::uint32_t>> landmarkDist;
    /** Landmark table entries in simulated memory (4 B per vertex). */
    std::vector<std::vector<Addr>> lmAddr;
    /** Shared adjacency list addresses (one allocation per vertex). */
    std::vector<Addr> adjAddr;

    std::vector<Query> queries;
    std::uint64_t epochsRun = 0;
};

} // namespace abndp

#endif // ABNDP_WORKLOADS_ASTAR_HH
