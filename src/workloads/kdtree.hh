/**
 * @file
 * Static KD-tree over low-dimensional points, used by the KNN workload.
 * Built deterministically with median splits; nodes are indexed so they
 * can be laid out in simulated memory.
 */

#ifndef ABNDP_WORKLOADS_KDTREE_HH
#define ABNDP_WORKLOADS_KDTREE_HH

#include <cstdint>
#include <vector>

namespace abndp
{

/** KD-tree with point indices stored contiguously per leaf. */
class KdTree
{
  public:
    static constexpr std::uint32_t dims = 2;
    static constexpr std::uint32_t noChild = ~0u;

    struct Node
    {
        /** Split dimension (internal nodes). */
        std::uint32_t splitDim = 0;
        float splitVal = 0.0f;
        std::uint32_t left = noChild;
        std::uint32_t right = noChild;
        /** Range in pointOrder for leaves (begin == end for internal). */
        std::uint32_t begin = 0;
        std::uint32_t end = 0;

        bool isLeaf() const { return left == noChild; }
    };

    /**
     * Build over @p points (numPoints x dims, row-major).
     * @param leafSize max points per leaf
     */
    KdTree(const std::vector<float> &points, std::uint32_t leafSize = 8);

    const std::vector<Node> &nodes() const { return tree; }
    std::uint32_t root() const { return 0; }
    std::uint32_t numPoints() const
    {
        return static_cast<std::uint32_t>(order.size());
    }

    /** Point indices in leaf-contiguous order. */
    const std::vector<std::uint32_t> &pointOrder() const { return order; }

    /** Depth of the tree (root = level 0). */
    std::uint32_t depth() const { return maxDepth; }

    /**
     * Lower bound on the squared distance from @p q (dims floats) to any
     * point in @p node's region, given the path bounds accumulated in
     * @p offsets (used internally; exposed for tests).
     */
    static float boxDistance(const float *q, const float *lo,
                             const float *hi);

  private:
    std::uint32_t build(std::vector<std::uint32_t> &idx, std::uint32_t lo,
                        std::uint32_t hi, std::uint32_t depth,
                        const std::vector<float> &points,
                        std::uint32_t leafSize);

    std::vector<Node> tree;
    std::vector<std::uint32_t> order;
    std::uint32_t maxDepth = 0;
};

} // namespace abndp

#endif // ABNDP_WORKLOADS_KDTREE_HH
