/**
 * @file
 * Query-service interface: the serving-mode face of a workload.
 *
 * A workload that additionally implements QueryService can be driven
 * by the open-loop serving driver (NdpSystem::serve()): instead of
 * emitting one bulk-synchronous batch, the driver draws keys from a
 * Zipfian sampler over keySpace() and injects one *independent*
 * point-query task per admitted request via makeQueryTask(). Query
 * tasks must be read-only and must never enqueue children — there is
 * no next timestamp to enqueue into (the serving engine panics on any
 * child enqueue).
 *
 * Services record each executed query's answer into the served-log
 * slot named by the task's sequence number; verifyServed() replays
 * the log against an independent host-side reference. Slots are
 * independent, so execution order (which varies across designs, not
 * across runs) cannot affect the log contents.
 */

#ifndef ABNDP_WORKLOADS_QUERY_SERVICE_HH
#define ABNDP_WORKLOADS_QUERY_SERVICE_HH

#include <cstdint>
#include <vector>

#include "tasking/task.hh"

namespace abndp
{

/** Mixin interface for workloads that can serve point queries. */
class QueryService
{
  public:
    virtual ~QueryService() = default;

    /** One admitted request's key and recorded answer. */
    struct ServedRecord
    {
        std::uint64_t key = 0;
        std::uint64_t answer = 0;
        bool done = false;
    };

    /**
     * Number of distinct keys the Zipfian sampler draws from. Only
     * valid after Workload::setup().
     */
    virtual std::uint64_t keySpace() const = 0;

    /**
     * Build the independent read-only task answering @p key. @p seq
     * is the dense admitted-request index; the service must log the
     * key under it (task.arg carries it back to executeTask).
     */
    virtual Task makeQueryTask(std::uint64_t key, std::uint64_t seq) = 0;

    /**
     * Check every executed query's answer against an independent
     * reference computed host-side. @retval true if all match.
     */
    virtual bool verifyServed() const = 0;

    /**
     * Serving-run prologue, called once by the driver after setup():
     * sizes the served log and lets the service precompute reference
     * state (onBeginServing()). @p expected is an upper bound on
     * admitted requests.
     */
    void
    beginServing(std::uint64_t expected)
    {
        servedLog.reserve(expected);
        servingOn = true;
        onBeginServing();
    }

    /** True once beginServing() ran (routes Workload::verify()). */
    bool servingActive() const { return servingOn; }

    const std::vector<ServedRecord> &servedRecords() const
    {
        return servedLog;
    }

  protected:
    /** Service-specific precomputation hook (e.g. reference state). */
    virtual void onBeginServing() {}

    /** Append the served-log slot for one admitted request. */
    std::uint64_t
    logQuery(std::uint64_t key)
    {
        servedLog.push_back(ServedRecord{key, 0, false});
        return servedLog.size() - 1;
    }

    /** Record the answer of slot @p seq (must not already be done). */
    void
    recordAnswer(std::uint64_t seq, std::uint64_t answer)
    {
        auto &rec = servedLog[seq];
        rec.answer = answer;
        rec.done = true;
    }

    std::vector<ServedRecord> servedLog;
    bool servingOn = false;
};

} // namespace abndp

#endif // ABNDP_WORKLOADS_QUERY_SERVICE_HH
