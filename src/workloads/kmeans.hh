/**
 * @file
 * K-means clustering in the task model: one task per point per
 * iteration assigns the point to the nearest centroid; centroids are
 * recomputed at the bulk-synchronous timestamp boundary. Points are
 * purely local data, so this workload has neither remote-access nor
 * load-imbalance problems (the paper's control case).
 */

#ifndef ABNDP_WORKLOADS_KMEANS_HH
#define ABNDP_WORKLOADS_KMEANS_HH

#include <cstdint>
#include <vector>

#include "workloads/workload.hh"

namespace abndp
{

/** Lloyd's k-means over a synthetic Gaussian-mixture dataset. */
class KmeansWorkload : public Workload
{
  public:
    /** Point dimensionality: 8 doubles = one cache line per point. */
    static constexpr std::uint32_t dims = 8;

    KmeansWorkload(std::uint64_t numPoints, std::uint32_t clusters,
                   std::uint32_t iterations, std::uint64_t seed = 13);

    std::string name() const override { return "kmeans"; }
    void setup(SimAllocator &alloc) override;
    void emitInitialTasks(TaskSink &sink) override;
    void executeTask(const Task &task, TaskSink &sink) override;
    void endEpoch(std::uint64_t ts) override;
    bool verify() const override;

    const std::vector<std::uint32_t> &assignments() const { return assign; }
    const std::vector<double> &centroids() const { return centroid; }

  private:
    Task makeTask(std::uint64_t p, std::uint64_t ts) const;
    std::uint32_t nearestCentroid(const double *point,
                                  const std::vector<double> &cents) const;

    std::uint64_t numPoints;
    std::uint32_t k;
    std::uint32_t iterations;
    std::uint64_t seed;

    std::vector<double> points;   ///< numPoints x dims
    std::vector<Addr> pointAddr;
    std::vector<double> centroid; ///< k x dims
    std::vector<std::uint32_t> assign;
    std::vector<double> sums;
    std::vector<std::uint64_t> counts;
    std::uint64_t epochsRun = 0;
};

} // namespace abndp

#endif // ABNDP_WORKLOADS_KMEANS_HH
