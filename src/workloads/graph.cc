#include "workloads/graph.hh"

#include <algorithm>

#include "common/logging.hh"

namespace abndp
{

Graph
Graph::fromEdges(std::uint32_t numVertices, std::vector<Edge> edges,
                 bool undirected)
{
    if (undirected) {
        std::size_t n = edges.size();
        edges.reserve(n * 2);
        for (std::size_t i = 0; i < n; ++i)
            edges.emplace_back(edges[i].second, edges[i].first);
    }

    // Drop self-loops, sort, dedup.
    std::erase_if(edges, [](const Edge &e) { return e.first == e.second; });
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

    Graph g;
    g.nV = numVertices;
    g.rowPtr.assign(numVertices + 1, 0);
    for (const auto &[src, dst] : edges) {
        abndp_assert(src < numVertices && dst < numVertices,
                     "edge endpoint out of range");
        ++g.rowPtr[src + 1];
    }
    for (std::uint32_t v = 0; v < numVertices; ++v)
        g.rowPtr[v + 1] += g.rowPtr[v];
    g.colIdx.resize(edges.size());
    std::vector<std::uint64_t> cursor(g.rowPtr.begin(), g.rowPtr.end() - 1);
    for (const auto &[src, dst] : edges)
        g.colIdx[cursor[src]++] = dst;
    return g;
}

std::uint32_t
Graph::maxDegree() const
{
    std::uint32_t m = 0;
    for (std::uint32_t v = 0; v < nV; ++v)
        m = std::max(m, degree(v));
    return m;
}

} // namespace abndp
