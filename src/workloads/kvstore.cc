#include "workloads/kvstore.hh"

#include "common/logging.hh"
#include "common/rng.hh"

namespace abndp
{

KvStoreWorkload::KvStoreWorkload(std::uint64_t numKeys,
                                 std::uint32_t numLookups,
                                 std::uint64_t seed)
    : numKeys(numKeys), numLookups(numLookups), seed(seed)
{
    abndp_assert(numKeys >= 1);
    // Level sizes from the leaves up, then reversed so root is first.
    std::vector<std::uint64_t> sizes;
    sizes.push_back((numKeys + fanout - 1) / fanout);
    while (sizes.back() > 1)
        sizes.push_back((sizes.back() + fanout - 1) / fanout);
    levelSize.assign(sizes.rbegin(), sizes.rend());

    Rng rng(mix64(seed ^ 0x4b76ULL));
    lookupKeys.resize(numLookups);
    for (auto &k : lookupKeys)
        k = rng.below(numKeys);
    lookupAnswers.assign(numLookups, 0);
    lookupDone.assign(numLookups, false);
}

std::uint64_t
KvStoreWorkload::valueOf(std::uint64_t key) const
{
    return mix64(seed ^ (key * 0x9e3779b97f4a7c15ULL));
}

void
KvStoreWorkload::setup(SimAllocator &alloc)
{
    // One 64-byte node per tree slot; every level element-interleaved
    // so the (hot) upper levels spread across all units.
    levelAddr.clear();
    for (std::uint64_t sz : levelSize)
        levelAddr.push_back(alloc.allocateArray(64, sz,
                                                Placement::Interleaved));
}

Task
KvStoreWorkload::makeLookupTask(std::uint64_t key, std::uint64_t arg) const
{
    abndp_assert(key < numKeys);
    Task t;
    t.timestamp = 0;
    t.arg = arg;
    // Root-to-leaf path: the node covering the key at level l is the
    // leaf index divided down by the fanout once per level below it.
    std::uint64_t leaf = key / fanout;
    std::uint32_t d = depth();
    for (std::uint32_t l = 0; l < d; ++l) {
        std::uint64_t idx = leaf;
        for (std::uint32_t below = d - 1; below > l; --below)
            idx /= fanout;
        t.hint.data.push_back(levelAddr[l][idx]);
    }
    // Per-node binary search plus the leaf record read.
    t.computeInstrs = 4ull * d + 4;
    return t;
}

void
KvStoreWorkload::emitInitialTasks(TaskSink &sink)
{
    for (std::uint32_t j = 0; j < numLookups; ++j)
        sink.enqueueTask(makeLookupTask(lookupKeys[j], j));
}

Task
KvStoreWorkload::makeQueryTask(std::uint64_t key, std::uint64_t seq)
{
    std::uint64_t slot = logQuery(key);
    abndp_assert(slot == seq, "served-log slot out of step: ", slot,
                 " vs ", seq);
    return makeLookupTask(key, seq);
}

void
KvStoreWorkload::executeTask(const Task &task, TaskSink &sink)
{
    (void)sink; // point lookups never enqueue children
    if (servingActive()) {
        std::uint64_t seq = task.arg;
        recordAnswer(seq, valueOf(servedRecords()[seq].key));
        return;
    }
    auto j = static_cast<std::uint32_t>(task.arg);
    lookupAnswers[j] = valueOf(lookupKeys[j]);
    lookupDone[j] = true;
}

void
KvStoreWorkload::endEpoch(std::uint64_t ts)
{
    (void)ts;
    ++epochsRun;
}

bool
KvStoreWorkload::verify() const
{
    if (servingActive())
        return verifyServed();
    // Independent recomputation of every expected value.
    for (std::uint32_t j = 0; j < numLookups; ++j) {
        if (!lookupDone[j])
            return false;
        std::uint64_t expect =
            mix64(seed ^ (lookupKeys[j] * 0x9e3779b97f4a7c15ULL));
        if (lookupAnswers[j] != expect)
            return false;
    }
    return true;
}

bool
KvStoreWorkload::verifyServed() const
{
    for (const auto &rec : servedRecords()) {
        if (!rec.done)
            return false;
        std::uint64_t expect =
            mix64(seed ^ (rec.key * 0x9e3779b97f4a7c15ULL));
        if (rec.answer != expect)
            return false;
    }
    return true;
}

} // namespace abndp
