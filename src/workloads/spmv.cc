#include "workloads/spmv.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"

namespace abndp
{

SpmvWorkload::SpmvWorkload(Graph matrix_, std::uint32_t iterations,
                           std::uint64_t seed)
    : matrix(std::move(matrix_)),
      // 16-byte {x, y} record per row/column index; 8 bytes per matrix
      // entry (4-byte column index + 4-byte value).
      layout(matrix, 16, 8),
      iterations(iterations),
      seed(seed),
      x(matrix.numVertices()),
      y(matrix.numVertices(), 0.0)
{
    abndp_assert(iterations >= 1);
    for (std::uint32_t i = 0; i < matrix.numVertices(); ++i)
        x[i] = 1.0 + static_cast<double>(mix64(seed ^ i) % 256) / 256.0;
}

double
SpmvWorkload::valueAt(std::uint32_t row, std::size_t entryIdx) const
{
    std::uint64_t h = mix64(seed ^ 0xabcdULL
                            ^ (matrix.edgeOffset(row) + entryIdx));
    return 0.5 + static_cast<double>(h % 1024) / 1024.0;
}

void
SpmvWorkload::setup(SimAllocator &alloc)
{
    layout.setup(alloc);
}

Task
SpmvWorkload::makeTask(std::uint32_t row, std::uint64_t ts) const
{
    Task t;
    t.timestamp = ts;
    t.arg = row;
    layout.buildVertexTaskHint(row, t.hint, hintArena);
    t.writes.push_back(layout.vertexAddr(row));
    t.computeInstrs = 4 + 2ull * matrix.degree(row);
    if (explicitLoadHints)
        t.hint.workload = t.computeInstrs + 51ull * t.hint.data.size();
    return t;
}

void
SpmvWorkload::emitInitialTasks(TaskSink &sink)
{
    for (std::uint32_t r = 0; r < matrix.numVertices(); ++r)
        sink.enqueueTask(makeTask(r, 0));
}

void
SpmvWorkload::executeTask(const Task &task, TaskSink &sink)
{
    auto r = static_cast<std::uint32_t>(task.arg);
    auto cols = matrix.neighbors(r);
    double acc = 0.0;
    for (std::size_t i = 0; i < cols.size(); ++i)
        acc += valueAt(r, i) * x[cols[i]];
    y[r] = acc;
    if (task.timestamp + 1 < iterations)
        sink.enqueueTask(makeTask(r, task.timestamp + 1));
}

void
SpmvWorkload::endEpoch(std::uint64_t ts)
{
    (void)ts;
    double norm = 0.0;
    for (double v : y)
        norm = std::max(norm, std::abs(v));
    if (norm == 0.0)
        norm = 1.0;
    for (std::uint32_t i = 0; i < matrix.numVertices(); ++i)
        x[i] = y[i] / norm;
    ++epochsRun;
}

bool
SpmvWorkload::verify() const
{
    std::uint32_t n = matrix.numVertices();
    std::vector<double> rx(n), ry(n, 0.0);
    for (std::uint32_t i = 0; i < n; ++i)
        rx[i] = 1.0 + static_cast<double>(mix64(seed ^ i) % 256) / 256.0;
    for (std::uint64_t it = 0; it < epochsRun; ++it) {
        for (std::uint32_t r = 0; r < n; ++r) {
            auto cols = matrix.neighbors(r);
            double acc = 0.0;
            for (std::size_t i = 0; i < cols.size(); ++i)
                acc += valueAt(r, i) * rx[cols[i]];
            ry[r] = acc;
        }
        double norm = 0.0;
        for (double v : ry)
            norm = std::max(norm, std::abs(v));
        if (norm == 0.0)
            norm = 1.0;
        for (std::uint32_t i = 0; i < n; ++i)
            rx[i] = ry[i] / norm;
    }
    for (std::uint32_t i = 0; i < n; ++i)
        if (std::abs(rx[i] - x[i]) > 1e-9)
            return false;
    return true;
}

} // namespace abndp
