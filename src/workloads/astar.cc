#include "workloads/astar.hh"

#include <algorithm>
#include <queue>

#include "common/logging.hh"
#include "common/rng.hh"

namespace abndp
{

AstarWorkload::AstarWorkload(Graph graph_, std::uint32_t numQueries,
                             std::uint64_t seed)
    : graph(std::move(graph_))
{
    abndp_assert(graph.numVertices() >= 2 && numQueries >= 1);
    Rng rng(seed);

    // ALT preprocessing: BFS tables from a few high-degree landmarks
    // (good coverage on power-law graphs) plus random ones.
    std::vector<std::uint32_t> lms;
    std::uint32_t v_max = 0;
    for (std::uint32_t v = 0; v < graph.numVertices(); ++v)
        if (graph.degree(v) > graph.degree(v_max))
            v_max = v;
    lms.push_back(v_max);
    while (lms.size() < numLandmarks) {
        auto v = static_cast<std::uint32_t>(
            rng.below(graph.numVertices()));
        if (graph.degree(v) > 0
            && std::find(lms.begin(), lms.end(), v) == lms.end())
            lms.push_back(v);
    }
    landmarkDist.reserve(numLandmarks);
    for (std::uint32_t l = 0; l < numLandmarks; ++l)
        landmarkDist.push_back(bfsFrom(lms[l]));

    // Query endpoints: reachable from the first landmark so each query
    // has a path.
    const auto &reach = landmarkDist[0];
    std::vector<std::uint32_t> candidates;
    for (std::uint32_t v = 0; v < graph.numVertices(); ++v)
        if (reach[v] != inf)
            candidates.push_back(v);
    abndp_assert(candidates.size() >= 2, "graph too disconnected");

    queries.resize(numQueries);
    for (auto &q : queries) {
        q.start = candidates[rng.below(candidates.size())];
        do {
            q.goal = candidates[rng.below(candidates.size())];
        } while (q.goal == q.start);
        q.g.assign(graph.numVertices(), inf);
        q.nextG.assign(graph.numVertices(), inf);
        q.enqueuedNext.assign(graph.numVertices(), false);
    }
}

std::vector<std::uint32_t>
AstarWorkload::bfsFrom(std::uint32_t from) const
{
    std::vector<std::uint32_t> dist(graph.numVertices(), inf);
    std::queue<std::uint32_t> q;
    dist[from] = 0;
    q.push(from);
    while (!q.empty()) {
        std::uint32_t v = q.front();
        q.pop();
        for (std::uint32_t n : graph.neighbors(v)) {
            if (dist[n] == inf) {
                dist[n] = dist[v] + 1;
                q.push(n);
            }
        }
    }
    return dist;
}

std::uint32_t
AstarWorkload::heuristic(std::uint32_t vertex, std::uint32_t goal) const
{
    // ALT: h(n) = max_l |d(l, n) - d(l, goal)|; admissible and
    // consistent on the unit-cost graph by the triangle inequality.
    std::uint32_t h = 0;
    for (std::uint32_t l = 0; l < numLandmarks; ++l) {
        std::uint32_t dc = landmarkDist[l][vertex];
        std::uint32_t dg = landmarkDist[l][goal];
        if (dc == inf || dg == inf)
            continue;
        std::uint32_t diff = dc > dg ? dc - dg : dg - dc;
        h = std::max(h, diff);
    }
    return h;
}

void
AstarWorkload::setup(SimAllocator &alloc)
{
    // Shared landmark tables and adjacency lists.
    lmAddr.clear();
    for (std::uint32_t l = 0; l < numLandmarks; ++l)
        lmAddr.push_back(alloc.allocateArray(4, graph.numVertices(),
                                             Placement::Interleaved));
    adjAddr.assign(graph.numVertices(), invalidAddr);
    // Per-query vertex state records (16 B), interleaved; adjacency is
    // stored with the first query's record of its vertex.
    for (auto &q : queries)
        q.recAddr = alloc.allocateArray(16, graph.numVertices(),
                                        Placement::Interleaved);
    for (std::uint32_t v = 0; v < graph.numVertices(); ++v) {
        std::uint64_t bytes =
            static_cast<std::uint64_t>(graph.degree(v)) * 4;
        if (bytes > 0)
            adjAddr[v] = alloc.allocate(
                bytes, alloc.map().homeOf(queries[0].recAddr[v]),
                cachelineBytes);
    }
}

Task
AstarWorkload::makeTask(std::uint32_t q, std::uint32_t vertex,
                        std::uint64_t ts) const
{
    const Query &query = queries[q];
    Task t;
    t.timestamp = ts;
    t.arg = (static_cast<std::uint64_t>(q) << 32) | vertex;
    t.hint.data.reserveIn(hintArena,
                          2 + 2ull * graph.degree(vertex));
    t.hint.data.push_back(query.recAddr[vertex]);
    if (adjAddr[vertex] != invalidAddr)
        t.hint.ranges.push_back(
            {adjAddr[vertex],
             static_cast<std::uint32_t>(
                 static_cast<std::uint64_t>(graph.degree(vertex)) * 4)});
    for (std::uint32_t n : graph.neighbors(vertex)) {
        t.hint.data.push_back(query.recAddr[n]);
        // ALT entry used to evaluate h(n) for the pruning test.
        t.hint.data.push_back(lmAddr[n % numLandmarks][n]);
    }
    t.hint.data.push_back(lmAddr[vertex % numLandmarks][vertex]);
    t.writes.push_back(query.recAddr[vertex]);
    t.computeInstrs = 10 + 8ull * graph.degree(vertex);
    return t;
}

void
AstarWorkload::emitInitialTasks(TaskSink &sink)
{
    for (std::uint32_t q = 0; q < queries.size(); ++q) {
        auto &query = queries[q];
        query.g[query.start] = 0;
        query.nextG[query.start] = 0;
        sink.enqueueTask(makeTask(q, query.start, 0));
    }
}

Task
AstarWorkload::makeQueryTask(std::uint64_t key, std::uint64_t seq)
{
    std::uint64_t slot = logQuery(key);
    abndp_assert(slot == seq, "served-log slot out of step: ", slot,
                 " vs ", seq);
    auto v = static_cast<std::uint32_t>(key);
    std::uint32_t goal = servedGoalOf(key);
    Task t;
    t.timestamp = 0;
    t.func = 1;
    t.arg = seq;
    // Every landmark's entry for the vertex and for the goal; plain
    // push_back only (serving tasks outlive the epoch arena). The
    // goal-side entries are shared by all queries with that goal —
    // hot, read-only lines.
    for (std::uint32_t l = 0; l < numLandmarks; ++l) {
        t.hint.data.push_back(lmAddr[l][v]);
        t.hint.data.push_back(lmAddr[l][goal]);
    }
    t.computeInstrs = 4ull * numLandmarks;
    return t;
}

bool
AstarWorkload::verifyServed() const
{
    // Replay against the exact landmark tables (max-of-differences
    // recomputed here rather than through heuristic(), so a corrupted
    // log cannot hide behind shared code).
    for (const auto &rec : servedRecords()) {
        if (!rec.done)
            return false;
        auto v = static_cast<std::uint32_t>(rec.key);
        std::uint32_t goal = servedGoalOf(rec.key);
        std::uint32_t h = 0;
        for (std::uint32_t l = 0; l < numLandmarks; ++l) {
            std::uint32_t dc = landmarkDist[l][v];
            std::uint32_t dg = landmarkDist[l][goal];
            if (dc == inf || dg == inf)
                continue;
            h = std::max(h, dc > dg ? dc - dg : dg - dc);
        }
        if (rec.answer != h)
            return false;
    }
    return true;
}

void
AstarWorkload::executeTask(const Task &task, TaskSink &sink)
{
    if (servingActive()) {
        std::uint64_t seq = task.arg;
        const auto &rec = servedRecords()[seq];
        auto v = static_cast<std::uint32_t>(rec.key);
        recordAnswer(seq, heuristic(v, servedGoalOf(rec.key)));
        return;
    }
    auto qi = static_cast<std::uint32_t>(task.arg >> 32);
    auto v = static_cast<std::uint32_t>(task.arg & 0xffffffffu);
    Query &q = queries[qi];
    std::uint32_t gv = q.g[v];
    abndp_assert(gv != inf);
    if (q.bound != inf && gv + heuristic(v, q.goal) >= q.bound)
        return; // pruned: cannot beat the best known path
    for (std::uint32_t n : graph.neighbors(v)) {
        std::uint32_t ng = gv + 1;
        if (ng >= q.nextG[n])
            continue;
        if (q.bound != inf && ng + heuristic(n, q.goal) >= q.bound)
            continue;
        q.nextG[n] = ng;
        if (n == q.goal)
            q.nextBound = std::min(q.nextBound, ng);
        if (!q.enqueuedNext[n]) {
            q.enqueuedNext[n] = true;
            q.enqueuedList.push_back(n);
            sink.enqueueTask(makeTask(qi, n, task.timestamp + 1));
        }
    }
}

void
AstarWorkload::endEpoch(std::uint64_t ts)
{
    (void)ts;
    for (auto &q : queries) {
        q.g = q.nextG;
        q.bound = std::min(q.bound, q.nextBound);
        for (std::uint32_t c : q.enqueuedList)
            q.enqueuedNext[c] = false;
        q.enqueuedList.clear();
    }
    ++epochsRun;
}

bool
AstarWorkload::verify() const
{
    if (servingActive())
        return verifyServed();
    // Sequential replica of the same bulk-synchronous algorithm, per
    // query, with the same number of rounds; exact g-value comparison.
    for (const auto &query : queries) {
        std::vector<std::uint32_t> rg(graph.numVertices(), inf);
        std::vector<std::uint32_t> rnext(graph.numVertices(), inf);
        std::vector<bool> renq(graph.numVertices(), false);
        std::vector<std::uint32_t> frontier{query.start};
        std::uint32_t rbound = inf;
        rg[query.start] = rnext[query.start] = 0;
        for (std::uint64_t it = 0; it < epochsRun; ++it) {
            if (frontier.empty())
                break;
            std::vector<std::uint32_t> nextFrontier;
            std::uint32_t roundBound = rbound;
            for (std::uint32_t v : frontier) {
                std::uint32_t gv = rg[v];
                if (roundBound != inf
                    && gv + heuristic(v, query.goal) >= roundBound)
                    continue;
                for (std::uint32_t n : graph.neighbors(v)) {
                    std::uint32_t ng = gv + 1;
                    if (ng >= rnext[n])
                        continue;
                    if (roundBound != inf
                        && ng + heuristic(n, query.goal) >= roundBound)
                        continue;
                    rnext[n] = ng;
                    if (n == query.goal)
                        rbound = std::min(rbound, ng);
                    if (!renq[n]) {
                        renq[n] = true;
                        nextFrontier.push_back(n);
                    }
                }
            }
            rg = rnext;
            for (std::uint32_t c : nextFrontier)
                renq[c] = false;
            frontier = std::move(nextFrontier);
        }
        if (rg != query.g)
            return false;
    }
    return true;
}

} // namespace abndp
