/**
 * @file
 * Single-source shortest path as bulk-synchronous Bellman-Ford: each
 * timestamp relaxes the out-edges of the vertices whose distance
 * improved in the previous timestamp.
 */

#ifndef ABNDP_WORKLOADS_SSSP_HH
#define ABNDP_WORKLOADS_SSSP_HH

#include <cstdint>
#include <limits>
#include <vector>

#include "workloads/graph.hh"
#include "workloads/graph_layout.hh"
#include "workloads/workload.hh"

namespace abndp
{

/** Frontier-based SSSP with non-negative edge weights. */
class SsspWorkload : public Workload
{
  public:
    /** Edge weights are synthesized deterministically from @p seed. */
    SsspWorkload(Graph graph, std::uint32_t source = 0,
                 std::uint64_t seed = 7);

    std::string name() const override { return "sssp"; }
    void setup(SimAllocator &alloc) override;
    void emitInitialTasks(TaskSink &sink) override;
    void executeTask(const Task &task, TaskSink &sink) override;
    void endEpoch(std::uint64_t ts) override;
    bool verify() const override;

    const std::vector<double> &distances() const { return dist; }

  private:
    Task makeTask(std::uint32_t v, std::uint64_t ts) const;
    double weight(std::uint32_t v, std::size_t edgeIdx) const;

    Graph graph;
    GraphLayout layout;
    std::uint32_t source;
    std::uint64_t seed;

    static constexpr double inf = std::numeric_limits<double>::infinity();
    std::vector<double> dist;
    std::vector<double> nextDist;
    /** Vertices already enqueued for the next timestamp. */
    std::vector<bool> enqueuedNext;
    std::vector<std::uint32_t> enqueuedList;
    std::uint64_t epochsRun = 0;
};

} // namespace abndp

#endif // ABNDP_WORKLOADS_SSSP_HH
