/**
 * @file
 * Single-source shortest path as bulk-synchronous Bellman-Ford: each
 * timestamp relaxes the out-edges of the vertices whose distance
 * improved in the previous timestamp.
 *
 * Serving mode (QueryService): a distance oracle. Keys are vertex ids;
 * a query task reads its vertex record, adjacency list, and neighbor
 * records (the same footprint as one batch relaxation, so load scales
 * with degree) and answers the exact source distance, precomputed
 * host-side by Dijkstra in onBeginServing(). verifyServed() replays
 * the log against an independent Bellman-Ford fixpoint — a genuinely
 * different algorithm, made bit-comparable because the synthesized
 * weights are dyadic rationals (k/64), so path sums are exact in
 * double arithmetic.
 */

#ifndef ABNDP_WORKLOADS_SSSP_HH
#define ABNDP_WORKLOADS_SSSP_HH

#include <cstdint>
#include <limits>
#include <vector>

#include "workloads/graph.hh"
#include "workloads/graph_layout.hh"
#include "workloads/query_service.hh"
#include "workloads/workload.hh"

namespace abndp
{

/** Frontier-based SSSP with non-negative edge weights. */
class SsspWorkload : public Workload, public QueryService
{
  public:
    /** Edge weights are synthesized deterministically from @p seed. */
    SsspWorkload(Graph graph, std::uint32_t source = 0,
                 std::uint64_t seed = 7);

    std::string name() const override { return "sssp"; }
    void setup(SimAllocator &alloc) override;
    void emitInitialTasks(TaskSink &sink) override;
    void executeTask(const Task &task, TaskSink &sink) override;
    void endEpoch(std::uint64_t ts) override;
    bool verify() const override;

    const std::vector<double> &distances() const { return dist; }

    // QueryService: keys are vertex ids; answers are distance bits.
    std::uint64_t keySpace() const override
    {
        return graph.numVertices();
    }
    Task makeQueryTask(std::uint64_t key, std::uint64_t seq) override;
    bool verifyServed() const override;

  protected:
    /** Precompute the oracle distances (Dijkstra from the source). */
    void onBeginServing() override;

  private:
    Task makeTask(std::uint32_t v, std::uint64_t ts) const;
    double weight(std::uint32_t v, std::size_t edgeIdx) const;

    Graph graph;
    GraphLayout layout;
    std::uint32_t source;
    std::uint64_t seed;

    static constexpr double inf = std::numeric_limits<double>::infinity();
    std::vector<double> dist;
    std::vector<double> nextDist;
    /** Vertices already enqueued for the next timestamp. */
    std::vector<bool> enqueuedNext;
    std::vector<std::uint32_t> enqueuedList;
    std::uint64_t epochsRun = 0;

    /** Oracle distances for serving mode (set by onBeginServing()). */
    std::vector<double> refDist;
};

} // namespace abndp

#endif // ABNDP_WORKLOADS_SSSP_HH
