#include "workloads/knn.hh"

#include <algorithm>
#include <bit>
#include <limits>

#include "common/logging.hh"
#include "common/rng.hh"

namespace abndp
{

namespace
{

constexpr float infF = std::numeric_limits<float>::infinity();

/** Skewed 2D dataset: hotFraction of samples in a tight hot cluster. */
std::vector<float>
makeSkewedPoints(std::uint32_t n, double hotFraction, double hotSigma,
                 Rng &rng)
{
    std::vector<float> pts(static_cast<std::size_t>(n) * KdTree::dims);
    for (std::uint32_t i = 0; i < n; ++i) {
        bool hot = rng.chance(hotFraction);
        for (std::uint32_t d = 0; d < KdTree::dims; ++d) {
            double v = hot ? 5.0 + rng.gaussian() * hotSigma
                           : rng.uniform(-50.0, 50.0);
            pts[static_cast<std::size_t>(i) * KdTree::dims + d] =
                static_cast<float>(v);
        }
    }
    return pts;
}

} // namespace

KnnWorkload::KnnWorkload(std::uint32_t numPoints, std::uint32_t numQueries,
                         std::uint32_t k, double hotFraction,
                         std::uint64_t seed, std::uint32_t leafSize)
    : numPoints(numPoints), numQueries(numQueries), k(k),
      leafSize(leafSize),
      // A small fraction of the points sit in a tight hot cluster that
      // the (heavily skewed) queries keep searching: the cluster's few
      // leaves become the compute hotspot.
      points([&] {
          Rng rng(seed);
          return makeSkewedPoints(numPoints, 0.25 * hotFraction, 0.4, rng);
      }()),
      queries([&] {
          Rng rng(mix64(seed ^ 0xbeefULL));
          return makeSkewedPoints(numQueries, hotFraction, 0.4, rng);
      }()),
      tree(points, leafSize),
      results(numQueries),
      boundSnap(numQueries, infF),
      divedLeaf(numQueries, ~0u)
{
    abndp_assert(k >= 1 && numPoints >= k);
    // Map nodes to leaf indices (leaves numbered in node order).
    nodeLeafIdx.assign(tree.nodes().size(), ~0u);
    std::uint32_t leaf = 0;
    for (std::size_t i = 0; i < tree.nodes().size(); ++i)
        if (tree.nodes()[i].isLeaf())
            nodeLeafIdx[i] = leaf++;
}

void
KnnWorkload::setup(SimAllocator &alloc)
{
    // 32-byte node records, element-interleaved across units.
    nodeAddr = alloc.allocateArray(32, tree.nodes().size(),
                                   Placement::Interleaved);
    // One block per leaf holding its points contiguously.
    std::uint32_t numLeaves = 0;
    for (const auto &n : tree.nodes())
        numLeaves += n.isLeaf() ? 1 : 0;
    leafBlockAddr = alloc.allocateArray(
        static_cast<std::uint64_t>(leafSize) * dims * sizeof(float),
        numLeaves, Placement::Interleaved);
}

Task
KnnWorkload::makeTask(std::uint32_t query, std::uint32_t node, Phase phase,
                      std::uint64_t ts) const
{
    Task t;
    t.timestamp = ts;
    t.func = phase;
    t.arg = (static_cast<std::uint64_t>(query) << 32) | node;
    t.hint.data.push_back(nodeAddr[node]);
    const auto &nd = tree.nodes()[node];
    if (nd.isLeaf()) {
        Addr base = leafBlockAddr[nodeLeafIdx[node]];
        t.hint.ranges.push_back(
            {base, static_cast<std::uint32_t>(
                       static_cast<std::uint64_t>(nd.end - nd.begin)
                       * dims * sizeof(float))});
        t.computeInstrs = 8ull * (nd.end - nd.begin);
    } else {
        t.computeInstrs = 10;
    }
    return t;
}

float
KnnWorkload::dist2(const float *a, const float *b) const
{
    float d2 = 0.0f;
    for (std::uint32_t d = 0; d < dims; ++d) {
        float diff = a[d] - b[d];
        d2 += diff * diff;
    }
    return d2;
}

void
KnnWorkload::offerCandidate(std::uint32_t query, std::uint32_t point)
{
    float d2 = dist2(&queries[static_cast<std::size_t>(query) * dims],
                     &points[static_cast<std::size_t>(point) * dims]);
    auto &res = results[query];
    std::pair<float, std::uint32_t> cand{d2, point};
    auto pos = std::lower_bound(res.begin(), res.end(), cand);
    if (pos != res.end() && *pos == cand)
        return; // already offered (a dive leaf revisited during expand)
    if (res.size() < k) {
        res.insert(pos, cand);
    } else if (pos != res.end()) {
        res.insert(pos, cand);
        res.pop_back();
    }
}

void
KnnWorkload::emitInitialTasks(TaskSink &sink)
{
    for (std::uint32_t q = 0; q < numQueries; ++q)
        sink.enqueueTask(makeTask(q, tree.root(), Dive, 0));
}

std::uint32_t
KnnWorkload::diveLeafOf(std::uint32_t query,
                        std::vector<std::uint32_t> *path) const
{
    const float *q = &queries[static_cast<std::size_t>(query) * dims];
    std::uint32_t node = tree.root();
    for (;;) {
        if (path)
            path->push_back(node);
        const auto &nd = tree.nodes()[node];
        if (nd.isLeaf())
            return node;
        node = q[nd.splitDim] - nd.splitVal <= 0.0f ? nd.left : nd.right;
    }
}

std::uint64_t
KnnWorkload::servedAnswerOf(std::uint32_t query) const
{
    std::uint32_t leaf = diveLeafOf(query, nullptr);
    const auto &nd = tree.nodes()[leaf];
    const auto &order = tree.pointOrder();
    const float *q = &queries[static_cast<std::size_t>(query) * dims];
    float best = infF;
    std::uint32_t bestId = ~0u;
    for (std::uint32_t i = nd.begin; i < nd.end; ++i) {
        std::uint32_t p = order[i];
        float d2v = dist2(q, &points[static_cast<std::size_t>(p) * dims]);
        if (d2v < best || (d2v == best && p < bestId)) {
            best = d2v;
            bestId = p;
        }
    }
    return (static_cast<std::uint64_t>(std::bit_cast<std::uint32_t>(best))
            << 32)
        | bestId;
}

Task
KnnWorkload::makeQueryTask(std::uint64_t key, std::uint64_t seq)
{
    std::uint64_t slot = logQuery(key);
    abndp_assert(slot == seq, "served-log slot out of step: ", slot,
                 " vs ", seq);
    auto query = static_cast<std::uint32_t>(key);
    std::vector<std::uint32_t> path;
    std::uint32_t leaf = diveLeafOf(query, &path);
    const auto &nd = tree.nodes()[leaf];

    Task t;
    t.timestamp = 0;
    t.func = Serve;
    t.arg = seq;
    // Plain push_back only (inline/heap tiers): serving tasks outlive
    // every epoch-arena generation, so the arena must not back them.
    for (std::uint32_t n : path)
        t.hint.data.push_back(nodeAddr[n]);
    t.hint.ranges.push_back(
        {leafBlockAddr[nodeLeafIdx[leaf]],
         static_cast<std::uint32_t>(
             static_cast<std::uint64_t>(nd.end - nd.begin) * dims
             * sizeof(float))});
    t.computeInstrs = 10ull * (path.size() - 1)
        + 8ull * (nd.end - nd.begin);
    return t;
}

void
KnnWorkload::executeTask(const Task &task, TaskSink &sink)
{
    if (servingActive()) {
        abndp_assert(static_cast<Phase>(task.func) == Serve);
        std::uint64_t seq = task.arg;
        auto key =
            static_cast<std::uint32_t>(servedRecords()[seq].key);
        recordAnswer(seq, servedAnswerOf(key));
        return;
    }
    auto query = static_cast<std::uint32_t>(task.arg >> 32);
    auto node = static_cast<std::uint32_t>(task.arg & 0xffffffffu);
    auto phase = static_cast<Phase>(task.func);
    const auto &nd = tree.nodes()[node];
    const float *q = &queries[static_cast<std::size_t>(query) * dims];

    if (phase == Dive) {
        if (nd.isLeaf()) {
            // Seed the candidate set, then start the pruned expansion.
            const auto &order = tree.pointOrder();
            for (std::uint32_t i = nd.begin; i < nd.end; ++i)
                offerCandidate(query, order[i]);
            divedLeaf[query] = node;
            sink.enqueueTask(makeTask(query, tree.root(), Expand,
                                      task.timestamp + 1));
            return;
        }
        float diff = q[nd.splitDim] - nd.splitVal;
        std::uint32_t near = diff <= 0.0f ? nd.left : nd.right;
        sink.enqueueTask(makeTask(query, near, Dive, task.timestamp + 1));
        return;
    }

    // Expand phase: pruned wavefront over the whole tree.
    if (nd.isLeaf()) {
        if (node == divedLeaf[query])
            return; // the dive pass already scanned this leaf
        const auto &order = tree.pointOrder();
        for (std::uint32_t i = nd.begin; i < nd.end; ++i)
            offerCandidate(query, order[i]);
        return;
    }

    float diff = q[nd.splitDim] - nd.splitVal;
    std::uint32_t near = diff <= 0.0f ? nd.left : nd.right;
    std::uint32_t far = diff <= 0.0f ? nd.right : nd.left;

    sink.enqueueTask(makeTask(query, near, Expand, task.timestamp + 1));
    // Visit the far side unless the split plane is already farther than
    // the (previous-timestamp) k-th best distance. Stale bounds only
    // over-visit, never skip a true neighbor.
    if (diff * diff < boundSnap[query])
        sink.enqueueTask(makeTask(query, far, Expand, task.timestamp + 1));
}

void
KnnWorkload::endEpoch(std::uint64_t ts)
{
    (void)ts;
    for (std::uint32_t q = 0; q < numQueries; ++q)
        boundSnap[q] =
            results[q].size() >= k ? results[q].back().first : infF;
    ++epochsRun;
}

bool
KnnWorkload::verifyServed() const
{
    // Replays the log against the host-side leaf-dive answer; catches
    // lost, duplicated, or cross-wired records (the simulator may
    // reorder and recover tasks arbitrarily, but slot seq must hold
    // exactly the answer of the key logged under seq).
    for (const auto &rec : servedRecords()) {
        if (!rec.done)
            return false;
        if (rec.answer
            != servedAnswerOf(static_cast<std::uint32_t>(rec.key)))
            return false;
    }
    return true;
}

bool
KnnWorkload::verify() const
{
    if (servingActive())
        return verifyServed();
    // Brute force reference; ties broken by (distance, id) so the answer
    // set is unique. Only meaningful for uncapped runs (the wavefront
    // reaches every unpruned leaf within tree.depth() + 1 epochs).
    for (std::uint32_t q = 0; q < numQueries; ++q) {
        std::vector<std::pair<float, std::uint32_t>> all(numPoints);
        for (std::uint32_t p = 0; p < numPoints; ++p)
            all[p] = {dist2(&queries[static_cast<std::size_t>(q) * dims],
                            &points[static_cast<std::size_t>(p) * dims]),
                      p};
        std::partial_sort(all.begin(), all.begin() + k, all.end());
        all.resize(k);
        if (results[q] != all)
            return false;
    }
    return true;
}

} // namespace abndp
