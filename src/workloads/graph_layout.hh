/**
 * @file
 * Simulated-memory layout shared by the graph workloads: per-vertex
 * property records distributed element-interleaved across NDP units (the
 * paper's baseline placement) and per-vertex adjacency lists stored in
 * the same unit as their vertex.
 */

#ifndef ABNDP_WORKLOADS_GRAPH_LAYOUT_HH
#define ABNDP_WORKLOADS_GRAPH_LAYOUT_HH

#include <cstdint>
#include <vector>

#include "mem/allocator.hh"
#include "tasking/task.hh"
#include "workloads/graph.hh"

namespace abndp
{

/** Address layout of one graph's primary data. */
class GraphLayout
{
  public:
    /**
     * @param graph the topology to lay out
     * @param vertexRecBytes bytes per vertex property record
     * @param bytesPerEdge bytes per adjacency entry (index + optional
     *        weight)
     */
    GraphLayout(const Graph &graph, std::uint32_t vertexRecBytes,
                std::uint32_t bytesPerEdge = 4,
                Placement placement = Placement::Interleaved)
        : graph(&graph), recBytes(vertexRecBytes), edgeBytes(bytesPerEdge),
          placement(placement)
    {
    }

    /** Allocate all records and adjacency lists. */
    void setup(SimAllocator &alloc);

    /** Address of vertex @p v's property record. */
    Addr vertexAddr(std::uint32_t v) const { return recAddr[v]; }

    /** Append @p v's adjacency list to the hint as an address range. */
    void appendAdjacency(std::uint32_t v, TaskHint &hint) const;

    /**
     * Build the standard hint of a vertex-centric task on @p v:
     * data[0] = v's record (main element), then v's adjacency lines,
     * then every neighbor's record. The address list is exact-size
     * reserved in @p arena (the workload's epoch arena), so only
     * low-degree hints stay inline in the task object.
     */
    void buildVertexTaskHint(std::uint32_t v, TaskHint &hint,
                             TaskArena &arena) const;

  private:
    const Graph *graph;
    std::uint32_t recBytes;
    std::uint32_t edgeBytes;
    Placement placement;
    std::vector<Addr> recAddr;
    std::vector<Addr> adjAddr;
};

} // namespace abndp

#endif // ABNDP_WORKLOADS_GRAPH_LAYOUT_HH
