/**
 * @file
 * Deterministic synthetic graph generators.
 *
 * Real-world graphs (SNAP) in the paper exhibit power-law degree
 * distributions; the R-MAT generator reproduces that skew and is the
 * default input of the benchmark harnesses (see DESIGN.md substitutions).
 */

#ifndef ABNDP_WORKLOADS_GRAPH_GEN_HH
#define ABNDP_WORKLOADS_GRAPH_GEN_HH

#include <cstdint>

#include "workloads/graph.hh"

namespace abndp
{

/** R-MAT parameters; defaults are the classic (0.57, 0.19, 0.19, 0.05). */
struct RmatParams
{
    double a = 0.57;
    double b = 0.19;
    double c = 0.19;
    /** d is implicitly 1 - a - b - c. */
    std::uint32_t scale = 14;      ///< 2^scale vertices
    std::uint32_t edgeFactor = 16; ///< edges per vertex
    std::uint64_t seed = 42;
    bool undirected = true;
};

/** Power-law (scale-free) graph via recursive matrix sampling. */
Graph makeRmatGraph(const RmatParams &params);

/** Erdos-Renyi-style uniform random graph. */
Graph makeUniformGraph(std::uint32_t numVertices, std::uint64_t numEdges,
                       std::uint64_t seed, bool undirected = true);

/** 2D grid graph (width x height, 4-neighborhood). */
Graph makeGridGraph(std::uint32_t width, std::uint32_t height);

} // namespace abndp

#endif // ABNDP_WORKLOADS_GRAPH_GEN_HH
