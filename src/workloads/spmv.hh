/**
 * @file
 * Iterated sparse matrix-vector multiplication (power-iteration style):
 * each timestamp computes y = A x with one task per matrix row, then
 * renormalizes x <- y / ||y||_inf at the bulk boundary.
 */

#ifndef ABNDP_WORKLOADS_SPMV_HH
#define ABNDP_WORKLOADS_SPMV_HH

#include <cstdint>
#include <vector>

#include "workloads/graph.hh"
#include "workloads/graph_layout.hh"
#include "workloads/workload.hh"

namespace abndp
{

/** Power iteration over a sparse matrix with power-law row lengths. */
class SpmvWorkload : public Workload
{
  public:
    /**
     * @param matrix sparsity pattern (row r has entries at matrix
     *        neighbors(r)); values synthesized from @p seed
     * @param iterations number of y = A x rounds
     */
    SpmvWorkload(Graph matrix, std::uint32_t iterations,
                 std::uint64_t seed = 19);

    std::string name() const override { return "spmv"; }
    void setup(SimAllocator &alloc) override;
    void emitInitialTasks(TaskSink &sink) override;
    void executeTask(const Task &task, TaskSink &sink) override;
    void endEpoch(std::uint64_t ts) override;
    bool verify() const override;

    const std::vector<double> &vector() const { return x; }

  private:
    Task makeTask(std::uint32_t row, std::uint64_t ts) const;
    double valueAt(std::uint32_t row, std::size_t entryIdx) const;

    Graph matrix;
    GraphLayout layout;
    std::uint32_t iterations;
    std::uint64_t seed;

    std::vector<double> x;
    std::vector<double> y;
    std::uint64_t epochsRun = 0;
};

} // namespace abndp

#endif // ABNDP_WORKLOADS_SPMV_HH
