/**
 * @file
 * Graph convolutional network forward pass in the task model: each
 * timestamp is one GCN layer; a per-vertex task mean-aggregates neighbor
 * feature vectors, applies a dense FxF transform, and a ReLU.
 */

#ifndef ABNDP_WORKLOADS_GCN_HH
#define ABNDP_WORKLOADS_GCN_HH

#include <cstdint>
#include <vector>

#include "workloads/graph.hh"
#include "workloads/graph_layout.hh"
#include "workloads/workload.hh"

namespace abndp
{

/** Multi-layer GCN inference over a graph. */
class GcnWorkload : public Workload
{
  public:
    /** Feature dimension is fixed at 16 floats (one cache line). */
    static constexpr std::uint32_t featureDim = 16;

    GcnWorkload(Graph graph, std::uint32_t layers = 2,
                std::uint64_t seed = 5);

    std::string name() const override { return "gcn"; }
    void setup(SimAllocator &alloc) override;
    void emitInitialTasks(TaskSink &sink) override;
    void executeTask(const Task &task, TaskSink &sink) override;
    void endEpoch(std::uint64_t ts) override;
    bool verify() const override;

    /** Final feature of a vertex (after all layers). */
    const float *featuresOf(std::uint32_t v) const
    {
        return &curr[static_cast<std::size_t>(v) * featureDim];
    }

  private:
    Task makeTask(std::uint32_t v, std::uint64_t ts) const;
    float weightAt(std::uint32_t layer, std::uint32_t i,
                   std::uint32_t j) const;
    float initialFeature(std::uint32_t v, std::uint32_t f) const;

    Graph graph;
    GraphLayout layout;
    std::uint32_t layers;
    std::uint64_t seed;

    std::vector<float> curr;
    std::vector<float> next;
    std::uint64_t epochsRun = 0;
};

} // namespace abndp

#endif // ABNDP_WORKLOADS_GCN_HH
