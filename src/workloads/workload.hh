/**
 * @file
 * Workload interface: a data-centric, bulk-synchronous application
 * expressed in the task model of Section 3.1.
 *
 * Workloads perform *real* computation (results are checked against
 * sequential reference implementations) while the simulator accounts the
 * timing/energy of the memory accesses declared in task hints.
 */

#ifndef ABNDP_WORKLOADS_WORKLOAD_HH
#define ABNDP_WORKLOADS_WORKLOAD_HH

#include <cstdint>
#include <string>
#include <vector>

#include "mem/allocator.hh"
#include "tasking/task.hh"
#include "tasking/task_arena.hh"

namespace abndp
{

/** Base class of all ABNDP benchmark applications. */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Short identifier ("pr", "bfs", ...). */
    virtual std::string name() const = 0;

    /**
     * Lay out the primary data in the simulated address space. Called
     * exactly once before any task executes.
     */
    virtual void setup(SimAllocator &alloc) = 0;

    /** Emit the tasks of timestamp 0. */
    virtual void emitInitialTasks(TaskSink &sink) = 0;

    /**
     * Functionally execute one task: compute real results into the
     * workload's next-state buffers and enqueue children (timestamp + 1)
     * into @p sink. Must be order-independent within a timestamp.
     */
    virtual void executeTask(const Task &task, TaskSink &sink) = 0;

    /**
     * End of a bulk-synchronous timestamp: atomically apply updates
     * (e.g., swap double buffers).
     */
    virtual void endEpoch(std::uint64_t ts) { (void)ts; }

    /**
     * Check final results against the sequential reference.
     * @retval true if the computation is correct.
     */
    virtual bool verify() const = 0;

    /**
     * Supply programmer workload hints (Section 3.1: hint.workload) so
     * the scheduler needs no estimation. Defaults to estimated loads;
     * workloads that support explicit hints override the flag.
     */
    void setExplicitLoadHints(bool on) { explicitLoadHints = on; }

    /**
     * The per-epoch bump arena backing this workload's task-hint spans
     * (the workload generator owns hint storage; see task_arena.hh).
     * The driving runtime (NdpSystem, HostSystem, ImmediateExecutor)
     * calls rotate() at every epoch boundary.
     */
    TaskArena &taskArena() const { return hintArena; }

  protected:
    /** When true, makeTask() should set hint.workload explicitly. */
    bool explicitLoadHints = false;

    /**
     * Epoch-scoped storage for hint spans built by makeTask().
     * Mutable: the arena is allocation plumbing, not observable
     * workload state, and makeTask() is const across workloads.
     */
    mutable TaskArena hintArena;
};

/**
 * Trivial TaskSink that runs every task immediately and in order; used by
 * workload unit tests and the host baseline's functional execution.
 */
class ImmediateExecutor : public TaskSink
{
  public:
    explicit ImmediateExecutor(Workload &wl) : wl(wl) {}

    void
    enqueueTask(Task &&task) override
    {
        pending.push_back(std::move(task));
        ++nEnqueued;
    }

    /** Run bulk-synchronous epochs to completion (or maxEpochs). */
    std::uint64_t
    runToCompletion(std::uint64_t maxEpochs = 0)
    {
        std::uint64_t ts = 0;
        while (!pending.empty() && (maxEpochs == 0 || ts < maxEpochs)) {
            // Epoch boundary: children enqueued below must not share an
            // arena generation with the hints they are executed from.
            wl.taskArena().rotate();
            current.swap(pending);
            pending.clear();
            for (auto &task : current)
                wl.executeTask(task, *this);
            wl.endEpoch(ts);
            current.clear();
            ++ts;
        }
        return ts;
    }

    std::uint64_t enqueued() const { return nEnqueued; }

  private:
    Workload &wl;
    std::vector<Task> current;
    std::vector<Task> pending;
    std::uint64_t nEnqueued = 0;
};

} // namespace abndp

#endif // ABNDP_WORKLOADS_WORKLOAD_HH
