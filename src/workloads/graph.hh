/**
 * @file
 * Compressed sparse row (CSR) graph used by the graph-analytics
 * workloads, plus helpers to build it from edge lists.
 */

#ifndef ABNDP_WORKLOADS_GRAPH_HH
#define ABNDP_WORKLOADS_GRAPH_HH

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace abndp
{

/** Directed graph in CSR form (undirected graphs store both arcs). */
class Graph
{
  public:
    using Edge = std::pair<std::uint32_t, std::uint32_t>;

    Graph() = default;

    /**
     * Build from an edge list. Self-loops are dropped and duplicate
     * edges collapsed. If @p undirected, both directions are stored.
     */
    static Graph fromEdges(std::uint32_t numVertices,
                           std::vector<Edge> edges, bool undirected);

    std::uint32_t numVertices() const { return nV; }
    std::uint64_t numEdges() const { return colIdx.size(); }

    std::uint32_t
    degree(std::uint32_t v) const
    {
        return static_cast<std::uint32_t>(rowPtr[v + 1] - rowPtr[v]);
    }

    std::span<const std::uint32_t>
    neighbors(std::uint32_t v) const
    {
        return {colIdx.data() + rowPtr[v],
                colIdx.data() + rowPtr[v + 1]};
    }

    std::uint64_t edgeOffset(std::uint32_t v) const { return rowPtr[v]; }

    std::uint32_t maxDegree() const;

    const std::vector<std::uint64_t> &row() const { return rowPtr; }
    const std::vector<std::uint32_t> &col() const { return colIdx; }

  private:
    std::uint32_t nV = 0;
    std::vector<std::uint64_t> rowPtr;
    std::vector<std::uint32_t> colIdx;
};

} // namespace abndp

#endif // ABNDP_WORKLOADS_GRAPH_HH
