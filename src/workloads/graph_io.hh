/**
 * @file
 * Graph file I/O: the SNAP-style whitespace edge-list format used by the
 * datasets the paper evaluates on ("# comment" lines, then one
 * "src dst" pair per line). Lets users run the benchmark suite on real
 * graphs instead of the synthetic R-MAT inputs.
 */

#ifndef ABNDP_WORKLOADS_GRAPH_IO_HH
#define ABNDP_WORKLOADS_GRAPH_IO_HH

#include <string>

#include "workloads/graph.hh"

namespace abndp
{

/**
 * Load a SNAP-style edge list. Vertex ids are used as-is; the vertex
 * count is max id + 1. fatal() on unreadable files or malformed lines.
 *
 * @param undirected store both arc directions
 */
Graph loadEdgeList(const std::string &path, bool undirected);

/** Write a graph back out as an edge list (one arc per line). */
void saveEdgeList(const Graph &graph, const std::string &path);

} // namespace abndp

#endif // ABNDP_WORKLOADS_GRAPH_IO_HH
