#include "workloads/kmeans.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"

namespace abndp
{

KmeansWorkload::KmeansWorkload(std::uint64_t numPoints,
                               std::uint32_t clusters,
                               std::uint32_t iterations, std::uint64_t seed)
    : numPoints(numPoints), k(clusters), iterations(iterations), seed(seed),
      points(numPoints * dims),
      centroid(static_cast<std::size_t>(clusters) * dims),
      assign(numPoints, 0),
      sums(static_cast<std::size_t>(clusters) * dims, 0.0),
      counts(clusters, 0)
{
    abndp_assert(k >= 1 && iterations >= 1);
    // Gaussian mixture around k true centers.
    Rng rng(seed);
    std::vector<double> centers(static_cast<std::size_t>(k) * dims);
    for (auto &c : centers)
        c = rng.uniform(-10.0, 10.0);
    for (std::uint64_t p = 0; p < numPoints; ++p) {
        auto c = static_cast<std::uint32_t>(rng.below(k));
        for (std::uint32_t d = 0; d < dims; ++d)
            points[p * dims + d] =
                centers[static_cast<std::size_t>(c) * dims + d]
                + rng.gaussian();
    }
    // Deterministic initialization: first k points.
    for (std::uint32_t c = 0; c < k; ++c)
        for (std::uint32_t d = 0; d < dims; ++d)
            centroid[static_cast<std::size_t>(c) * dims + d] =
                points[static_cast<std::size_t>(c) * dims + d];
}

void
KmeansWorkload::setup(SimAllocator &alloc)
{
    pointAddr = alloc.allocateArray(dims * sizeof(double), numPoints,
                                    Placement::Interleaved);
}

Task
KmeansWorkload::makeTask(std::uint64_t p, std::uint64_t ts) const
{
    Task t;
    t.timestamp = ts;
    t.arg = p;
    // The point is the only primary data; centroids are tiny and
    // replicated into every unit's local SRAM.
    t.hint.data.push_back(pointAddr[p]);
    t.computeInstrs = 3ull * k * dims;
    return t;
}

std::uint32_t
KmeansWorkload::nearestCentroid(const double *point,
                                const std::vector<double> &cents) const
{
    std::uint32_t best = 0;
    double bestDist = 0.0;
    for (std::uint32_t c = 0; c < k; ++c) {
        double d2 = 0.0;
        for (std::uint32_t d = 0; d < dims; ++d) {
            double diff =
                point[d] - cents[static_cast<std::size_t>(c) * dims + d];
            d2 += diff * diff;
        }
        if (c == 0 || d2 < bestDist) {
            bestDist = d2;
            best = c;
        }
    }
    return best;
}

void
KmeansWorkload::emitInitialTasks(TaskSink &sink)
{
    for (std::uint64_t p = 0; p < numPoints; ++p)
        sink.enqueueTask(makeTask(p, 0));
}

void
KmeansWorkload::executeTask(const Task &task, TaskSink &sink)
{
    std::uint64_t p = task.arg;
    assign[p] = nearestCentroid(&points[p * dims], centroid);
    if (task.timestamp + 1 < iterations)
        sink.enqueueTask(makeTask(p, task.timestamp + 1));
}

void
KmeansWorkload::endEpoch(std::uint64_t ts)
{
    (void)ts;
    // Accumulate in point order so the result is independent of the
    // (scheduler-dependent) task execution order.
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0);
    for (std::uint64_t p = 0; p < numPoints; ++p) {
        std::uint32_t c = assign[p];
        for (std::uint32_t d = 0; d < dims; ++d)
            sums[static_cast<std::size_t>(c) * dims + d] +=
                points[p * dims + d];
        ++counts[c];
    }
    for (std::uint32_t c = 0; c < k; ++c) {
        if (counts[c] == 0)
            continue;
        for (std::uint32_t d = 0; d < dims; ++d)
            centroid[static_cast<std::size_t>(c) * dims + d] =
                sums[static_cast<std::size_t>(c) * dims + d] / counts[c];
    }
    ++epochsRun;
}

bool
KmeansWorkload::verify() const
{
    // Reference Lloyd iterations with identical initialization and the
    // same point-ordered accumulation, so the comparison is exact.
    std::vector<double> cents(centroid.size());
    std::vector<std::uint32_t> rassign(numPoints, 0);
    for (std::uint32_t c = 0; c < k; ++c)
        for (std::uint32_t d = 0; d < dims; ++d)
            cents[static_cast<std::size_t>(c) * dims + d] =
                points[static_cast<std::size_t>(c) * dims + d];
    std::vector<double> rsums(cents.size());
    std::vector<std::uint64_t> rcounts(k);
    for (std::uint64_t it = 0; it < epochsRun; ++it) {
        std::fill(rsums.begin(), rsums.end(), 0.0);
        std::fill(rcounts.begin(), rcounts.end(), 0);
        for (std::uint64_t p = 0; p < numPoints; ++p) {
            std::uint32_t c = nearestCentroid(&points[p * dims], cents);
            rassign[p] = c;
            for (std::uint32_t d = 0; d < dims; ++d)
                rsums[static_cast<std::size_t>(c) * dims + d] +=
                    points[p * dims + d];
            ++rcounts[c];
        }
        for (std::uint32_t c = 0; c < k; ++c) {
            if (rcounts[c] == 0)
                continue;
            for (std::uint32_t d = 0; d < dims; ++d)
                cents[static_cast<std::size_t>(c) * dims + d] =
                    rsums[static_cast<std::size_t>(c) * dims + d]
                    / rcounts[c];
        }
    }
    if (rassign != assign)
        return false;
    for (std::size_t i = 0; i < cents.size(); ++i)
        if (std::abs(cents[i] - centroid[i]) > 1e-6)
            return false;
    return true;
}

} // namespace abndp
