#include "workloads/gcn.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"

namespace abndp
{

GcnWorkload::GcnWorkload(Graph graph_, std::uint32_t layers,
                         std::uint64_t seed)
    : graph(std::move(graph_)),
      // 64-byte record: 16 floats, exactly one cache line per vertex.
      layout(graph, featureDim * sizeof(float)),
      layers(layers),
      seed(seed)
{
    abndp_assert(layers >= 1);
    std::size_t n =
        static_cast<std::size_t>(graph.numVertices()) * featureDim;
    curr.resize(n);
    next.resize(n);
    for (std::uint32_t v = 0; v < graph.numVertices(); ++v)
        for (std::uint32_t f = 0; f < featureDim; ++f)
            curr[static_cast<std::size_t>(v) * featureDim + f] =
                initialFeature(v, f);
}

float
GcnWorkload::initialFeature(std::uint32_t v, std::uint32_t f) const
{
    std::uint64_t h = mix64(seed ^ (static_cast<std::uint64_t>(v) << 8) ^ f);
    return static_cast<float>(h % 1000) / 1000.0f - 0.5f;
}

float
GcnWorkload::weightAt(std::uint32_t layer, std::uint32_t i,
                      std::uint32_t j) const
{
    std::uint64_t h = mix64(seed ^ 0xfeedULL ^ (layer * 1024 + i * 32 + j));
    return (static_cast<float>(h % 1000) / 1000.0f - 0.5f) * 0.5f;
}

void
GcnWorkload::setup(SimAllocator &alloc)
{
    layout.setup(alloc);
}

Task
GcnWorkload::makeTask(std::uint32_t v, std::uint64_t ts) const
{
    Task t;
    t.timestamp = ts;
    t.arg = v;
    layout.buildVertexTaskHint(v, t.hint, hintArena);
    t.writes.push_back(layout.vertexAddr(v));
    // deg * F aggregation MACs + F*F transform MACs.
    t.computeInstrs = static_cast<std::uint64_t>(graph.degree(v))
        * featureDim + featureDim * featureDim * 2;
    if (explicitLoadHints)
        t.hint.workload = t.computeInstrs + 51ull * t.hint.data.size();
    return t;
}

void
GcnWorkload::emitInitialTasks(TaskSink &sink)
{
    for (std::uint32_t v = 0; v < graph.numVertices(); ++v)
        sink.enqueueTask(makeTask(v, 0));
}

void
GcnWorkload::executeTask(const Task &task, TaskSink &sink)
{
    auto v = static_cast<std::uint32_t>(task.arg);
    auto layer = static_cast<std::uint32_t>(task.timestamp);

    // Mean aggregation over the neighborhood (self-inclusive).
    float agg[featureDim];
    for (std::uint32_t f = 0; f < featureDim; ++f)
        agg[f] = curr[static_cast<std::size_t>(v) * featureDim + f];
    for (std::uint32_t n : graph.neighbors(v))
        for (std::uint32_t f = 0; f < featureDim; ++f)
            agg[f] += curr[static_cast<std::size_t>(n) * featureDim + f];
    float inv = 1.0f / (1.0f + graph.degree(v));
    for (std::uint32_t f = 0; f < featureDim; ++f)
        agg[f] *= inv;

    // Dense transform + ReLU.
    float *out = &next[static_cast<std::size_t>(v) * featureDim];
    for (std::uint32_t i = 0; i < featureDim; ++i) {
        float acc = 0.0f;
        for (std::uint32_t j = 0; j < featureDim; ++j)
            acc += weightAt(layer, i, j) * agg[j];
        out[i] = acc > 0.0f ? acc : 0.0f;
    }

    if (layer + 1 < layers)
        sink.enqueueTask(makeTask(v, task.timestamp + 1));
}

void
GcnWorkload::endEpoch(std::uint64_t ts)
{
    (void)ts;
    curr.swap(next);
    ++epochsRun;
}

bool
GcnWorkload::verify() const
{
    std::uint32_t n = graph.numVertices();
    std::vector<float> ref(static_cast<std::size_t>(n) * featureDim);
    std::vector<float> nxt(ref.size());
    for (std::uint32_t v = 0; v < n; ++v)
        for (std::uint32_t f = 0; f < featureDim; ++f)
            ref[static_cast<std::size_t>(v) * featureDim + f] =
                initialFeature(v, f);

    for (std::uint32_t layer = 0; layer < epochsRun; ++layer) {
        for (std::uint32_t v = 0; v < n; ++v) {
            float agg[featureDim];
            for (std::uint32_t f = 0; f < featureDim; ++f)
                agg[f] = ref[static_cast<std::size_t>(v) * featureDim + f];
            for (std::uint32_t u : graph.neighbors(v))
                for (std::uint32_t f = 0; f < featureDim; ++f)
                    agg[f] +=
                        ref[static_cast<std::size_t>(u) * featureDim + f];
            float inv = 1.0f / (1.0f + graph.degree(v));
            for (std::uint32_t f = 0; f < featureDim; ++f)
                agg[f] *= inv;
            float *out = &nxt[static_cast<std::size_t>(v) * featureDim];
            for (std::uint32_t i = 0; i < featureDim; ++i) {
                float acc = 0.0f;
                for (std::uint32_t j = 0; j < featureDim; ++j)
                    acc += weightAt(layer, i, j) * agg[j];
                out[i] = acc > 0.0f ? acc : 0.0f;
            }
        }
        ref.swap(nxt);
    }

    for (std::size_t i = 0; i < ref.size(); ++i)
        if (std::abs(ref[i] - curr[i]) > 1e-5f)
            return false;
    return true;
}

} // namespace abndp
