/**
 * @file
 * Breadth-first search in the task model: each bulk-synchronous
 * timestamp expands one frontier level; a task reads its vertex's
 * adjacency and neighbor records and enqueues tasks for newly
 * discovered neighbors.
 */

#ifndef ABNDP_WORKLOADS_BFS_HH
#define ABNDP_WORKLOADS_BFS_HH

#include <cstdint>
#include <vector>

#include "workloads/graph.hh"
#include "workloads/graph_layout.hh"
#include "workloads/workload.hh"

namespace abndp
{

/** Level-synchronous BFS from a source vertex. */
class BfsWorkload : public Workload
{
  public:
    explicit BfsWorkload(Graph graph, std::uint32_t source = 0);

    std::string name() const override { return "bfs"; }
    void setup(SimAllocator &alloc) override;
    void emitInitialTasks(TaskSink &sink) override;
    void executeTask(const Task &task, TaskSink &sink) override;
    void endEpoch(std::uint64_t ts) override { (void)ts; ++epochsRun; }
    bool verify() const override;

    const std::vector<std::uint32_t> &distances() const { return dist; }

  private:
    Task makeTask(std::uint32_t v, std::uint64_t ts) const;

    Graph graph;
    GraphLayout layout;
    std::uint32_t source;

    static constexpr std::uint32_t unreached = ~0u;
    std::vector<std::uint32_t> dist;
    /** Claimed-for-next-level marks (bulk-synchronous discovery). */
    std::vector<bool> claimed;
    std::uint64_t epochsRun = 0;
};

} // namespace abndp

#endif // ABNDP_WORKLOADS_BFS_HH
