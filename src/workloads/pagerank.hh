/**
 * @file
 * Page Rank in the task model (paper Algorithm 1): one task per vertex
 * per iteration reads every neighbor's rank/out-degree and writes the
 * vertex's next rank; tasks for the next iteration are enqueued until
 * convergence.
 */

#ifndef ABNDP_WORKLOADS_PAGERANK_HH
#define ABNDP_WORKLOADS_PAGERANK_HH

#include <cstdint>
#include <vector>

#include "workloads/graph.hh"
#include "workloads/graph_layout.hh"
#include "workloads/workload.hh"

namespace abndp
{

/** Bulk-synchronous Page Rank. */
class PageRankWorkload : public Workload
{
  public:
    /**
     * @param graph input graph (directed interpretation for ranks)
     * @param maxIters stop after this many iterations (0 = converge)
     * @param epsilon per-vertex convergence threshold
     */
    explicit PageRankWorkload(Graph graph, std::uint32_t maxIters = 0,
                              double epsilon = 1e-7,
                              Placement placement =
                                  Placement::Interleaved);

    std::string name() const override { return "pr"; }
    void setup(SimAllocator &alloc) override;
    void emitInitialTasks(TaskSink &sink) override;
    void executeTask(const Task &task, TaskSink &sink) override;
    void endEpoch(std::uint64_t ts) override;
    bool verify() const override;

    const std::vector<double> &ranks() const { return curr; }
    std::uint64_t iterationsRun() const { return epochsRun; }

  private:
    Task makeTask(std::uint32_t v, std::uint64_t ts) const;

    /** Link graph (u -> v means u links to v). */
    Graph graph;
    /** Transpose: per vertex, the in-neighbors whose rank flows in. */
    Graph transpose;
    /** Out-degrees in the link graph (rank mass divisor). */
    std::vector<std::uint32_t> outDeg;
    GraphLayout layout;
    std::uint32_t maxIters;
    double epsilon;
    double damping = 0.85;

    std::vector<double> curr;
    std::vector<double> next;
    std::uint64_t epochsRun = 0;
};

} // namespace abndp

#endif // ABNDP_WORKLOADS_PAGERANK_HH
