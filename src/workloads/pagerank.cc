#include "workloads/pagerank.hh"

#include <cmath>

#include "common/logging.hh"

namespace abndp
{

namespace
{

/** Reverse every arc (rank flows opposite to the link direction). */
Graph
transposeOf(const Graph &g)
{
    std::vector<Graph::Edge> rev;
    rev.reserve(g.numEdges());
    for (std::uint32_t v = 0; v < g.numVertices(); ++v)
        for (std::uint32_t n : g.neighbors(v))
            rev.emplace_back(n, v);
    return Graph::fromEdges(g.numVertices(), std::move(rev), false);
}

} // namespace

PageRankWorkload::PageRankWorkload(Graph graph_, std::uint32_t maxIters,
                                   double epsilon, Placement placement)
    : graph(std::move(graph_)),
      transpose(transposeOf(graph)),
      // 16-byte record: {rank, 1/outDegree}.
      layout(transpose, 16, 4, placement),
      maxIters(maxIters),
      epsilon(epsilon)
{
    std::uint32_t n = graph.numVertices();
    outDeg.resize(n);
    for (std::uint32_t v = 0; v < n; ++v)
        outDeg[v] = graph.degree(v);
    curr.assign(n, 1.0 / n);
    next.assign(n, 1.0 / n);
}

void
PageRankWorkload::setup(SimAllocator &alloc)
{
    layout.setup(alloc);
}

Task
PageRankWorkload::makeTask(std::uint32_t v, std::uint64_t ts) const
{
    Task t;
    t.timestamp = ts;
    t.arg = v;
    // Reads: v's record, its in-neighbor list, the in-neighbors' records
    // (Algorithm 1 reads each in-neighbor's currPr / outDegree).
    layout.buildVertexTaskHint(v, t.hint, hintArena);
    t.writes.push_back(layout.vertexAddr(v));
    // ~4 instructions per neighbor contribution plus fixed overhead.
    t.computeInstrs = 8 + 4ull * transpose.degree(v);
    if (explicitLoadHints) {
        // The programmer knows the task cost exactly: compute plus one
        // nominal access per hint address (Section 3.1).
        t.hint.workload = t.computeInstrs + 51ull * t.hint.data.size();
    }
    return t;
}

void
PageRankWorkload::emitInitialTasks(TaskSink &sink)
{
    for (std::uint32_t v = 0; v < graph.numVertices(); ++v)
        sink.enqueueTask(makeTask(v, 0));
}

void
PageRankWorkload::executeTask(const Task &task, TaskSink &sink)
{
    auto v = static_cast<std::uint32_t>(task.arg);
    double acc = 0.0;
    for (std::uint32_t n : transpose.neighbors(v)) {
        if (outDeg[n] > 0)
            acc += curr[n] / outDeg[n];
    }
    double val = damping * acc + (1.0 - damping) / graph.numVertices();
    next[v] = val;
    // Algorithm 1: keep iterating while the rank has not converged.
    bool more = std::abs(val - curr[v]) > epsilon;
    if (more && (maxIters == 0 || task.timestamp + 1 < maxIters))
        sink.enqueueTask(makeTask(v, task.timestamp + 1));
}

void
PageRankWorkload::endEpoch(std::uint64_t ts)
{
    (void)ts;
    curr.swap(next);
    next = curr; // converged vertices carry their rank forward
    ++epochsRun;
}

bool
PageRankWorkload::verify() const
{
    // Sequential reference with identical bulk-synchronous semantics:
    // re-run epochsRun Jacobi iterations with per-vertex freezing.
    std::uint32_t n = graph.numVertices();
    std::vector<double> ref(n, 1.0 / n);
    std::vector<bool> live(n, true);
    for (std::uint64_t it = 0; it < epochsRun; ++it) {
        std::vector<double> nxt = ref;
        for (std::uint32_t v = 0; v < n; ++v) {
            if (!live[v])
                continue;
            double acc = 0.0;
            for (std::uint32_t u : transpose.neighbors(v)) {
                if (outDeg[u] > 0)
                    acc += ref[u] / outDeg[u];
            }
            double val = damping * acc + (1.0 - damping) / n;
            nxt[v] = val;
            if (std::abs(val - ref[v]) <= epsilon)
                live[v] = false;
        }
        ref.swap(nxt);
    }
    for (std::uint32_t v = 0; v < n; ++v)
        if (std::abs(ref[v] - curr[v]) > 1e-9)
            return false;
    return true;
}

} // namespace abndp
