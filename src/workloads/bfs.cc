#include "workloads/bfs.hh"

#include <queue>

#include "common/logging.hh"

namespace abndp
{

BfsWorkload::BfsWorkload(Graph graph_, std::uint32_t source)
    : graph(std::move(graph_)),
      // 8-byte record: {distance, flags}.
      layout(graph, 8),
      source(source),
      dist(graph.numVertices(), unreached),
      claimed(graph.numVertices(), false)
{
    abndp_assert(source < graph.numVertices());
}

void
BfsWorkload::setup(SimAllocator &alloc)
{
    layout.setup(alloc);
}

Task
BfsWorkload::makeTask(std::uint32_t v, std::uint64_t ts) const
{
    Task t;
    t.timestamp = ts;
    t.arg = v;
    layout.buildVertexTaskHint(v, t.hint, hintArena);
    t.writes.push_back(layout.vertexAddr(v));
    t.computeInstrs = 6 + 3ull * graph.degree(v);
    return t;
}

void
BfsWorkload::emitInitialTasks(TaskSink &sink)
{
    dist[source] = 0;
    claimed[source] = true;
    sink.enqueueTask(makeTask(source, 0));
}

void
BfsWorkload::executeTask(const Task &task, TaskSink &sink)
{
    auto v = static_cast<std::uint32_t>(task.arg);
    std::uint32_t d = dist[v];
    abndp_assert(d != unreached);
    for (std::uint32_t n : graph.neighbors(v)) {
        if (!claimed[n]) {
            claimed[n] = true;
            dist[n] = d + 1;
            sink.enqueueTask(makeTask(n, task.timestamp + 1));
        }
    }
}

bool
BfsWorkload::verify() const
{
    std::vector<std::uint32_t> ref(graph.numVertices(), unreached);
    std::queue<std::uint32_t> q;
    ref[source] = 0;
    q.push(source);
    while (!q.empty()) {
        std::uint32_t v = q.front();
        q.pop();
        for (std::uint32_t n : graph.neighbors(v)) {
            if (ref[n] == unreached) {
                ref[n] = ref[v] + 1;
                q.push(n);
            }
        }
    }
    // An epoch-capped run discovers exactly epochsRun levels beyond the
    // source; deeper vertices must still be unreached.
    for (std::uint32_t v = 0; v < graph.numVertices(); ++v) {
        bool reachable = ref[v] != unreached && ref[v] <= epochsRun;
        if (reachable ? dist[v] != ref[v] : dist[v] != unreached)
            return false;
    }
    return true;
}

} // namespace abndp
