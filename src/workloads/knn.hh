/**
 * @file
 * K-nearest-neighbors over a KD-tree in the task model, in two phases:
 * a *dive* pass first descends each query's near path one tree level per
 * timestamp to seed the k-th-best bound with real candidates, then an
 * *expand* pass re-descends from the root as a pruned wavefront. Subtree
 * visits are pruned with the query's k-th-best distance as of the
 * previous timestamp (bounds only shrink, so stale-bound pruning stays
 * exact; without the dive, the bound would stay infinite until the first
 * leaf and the wavefront would visit the whole tree).
 *
 * The query distribution is skewed (hot region), which concentrates
 * accesses on the corresponding subtree — the paper's hardest workload
 * for load balance.
 *
 * Serving mode (QueryService): a request key names one of the
 * pre-generated query points; the query task performs the whole
 * single-task *leaf-dive 1-NN* — it walks the near path from the root
 * to the query's leaf and answers the nearest point within that leaf
 * (exact under that stated semantic; the multi-epoch expand pass needs
 * children, which serving forbids). Its hint is the path's node lines
 * plus the leaf block, so skewed keys hammer the hot subtree's leaves.
 */

#ifndef ABNDP_WORKLOADS_KNN_HH
#define ABNDP_WORKLOADS_KNN_HH

#include <cstdint>
#include <vector>

#include "workloads/kdtree.hh"
#include "workloads/query_service.hh"
#include "workloads/workload.hh"

namespace abndp
{

/** Exact k-NN queries over a skewed synthetic point set. */
class KnnWorkload : public Workload, public QueryService
{
  public:
    static constexpr std::uint32_t dims = KdTree::dims;

    /**
     * @param numPoints dataset size
     * @param numQueries number of k-NN queries
     * @param k neighbors per query
     * @param hotFraction fraction of points/queries drawn from the hot
     *        cluster (the skew knob)
     */
    KnnWorkload(std::uint32_t numPoints, std::uint32_t numQueries,
                std::uint32_t k = 4, double hotFraction = 0.8,
                std::uint64_t seed = 17, std::uint32_t leafSize = 64);

    std::string name() const override { return "knn"; }
    void setup(SimAllocator &alloc) override;
    void emitInitialTasks(TaskSink &sink) override;
    void executeTask(const Task &task, TaskSink &sink) override;
    void endEpoch(std::uint64_t ts) override;
    bool verify() const override;

    /** Sorted (squared distance, point id) results of one query. */
    const std::vector<std::pair<float, std::uint32_t>> &
    resultsOf(std::uint32_t q) const
    {
        return results[q];
    }

    // QueryService: keys index the pre-generated query points.
    std::uint64_t keySpace() const override { return numQueries; }
    Task makeQueryTask(std::uint64_t key, std::uint64_t seq) override;
    bool verifyServed() const override;

  private:
    /** Task phases (Serve = single-task leaf-dive 1-NN query). */
    enum Phase : std::uint32_t { Dive = 0, Expand = 1, Serve = 2 };

    Task makeTask(std::uint32_t query, std::uint32_t node, Phase phase,
                  std::uint64_t ts) const;
    float dist2(const float *a, const float *b) const;
    void offerCandidate(std::uint32_t query, std::uint32_t point);

    /**
     * Leaf reached by @p query's near path; appends the visited nodes
     * (root included) to @p path when non-null.
     */
    std::uint32_t diveLeafOf(std::uint32_t query,
                             std::vector<std::uint32_t> *path) const;

    /**
     * Host-side served answer of @p query: nearest point within the
     * dive leaf, ties by lowest id; packed as
     * (float bits of squared distance << 32) | point id.
     */
    std::uint64_t servedAnswerOf(std::uint32_t query) const;

    std::uint32_t numPoints;
    std::uint32_t numQueries;
    std::uint32_t k;
    std::uint32_t leafSize;

    std::vector<float> points;  ///< numPoints x dims
    std::vector<float> queries; ///< numQueries x dims
    KdTree tree;

    std::vector<Addr> nodeAddr;
    std::vector<Addr> leafBlockAddr; ///< per leaf, points in order[]
    std::vector<std::uint32_t> nodeLeafIdx; ///< node -> leaf index or ~0

    /** Per-query sorted candidates (squared distance, id), size <= k. */
    std::vector<std::vector<std::pair<float, std::uint32_t>>> results;
    /** Pruning bound snapshot from the previous timestamp. */
    std::vector<float> boundSnap;
    /** Leaf each query's dive pass scanned (skipped during expand). */
    std::vector<std::uint32_t> divedLeaf;
    std::uint64_t epochsRun = 0;
};

} // namespace abndp

#endif // ABNDP_WORKLOADS_KNN_HH
