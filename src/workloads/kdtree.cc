#include "workloads/kdtree.hh"

#include <algorithm>
#include <numeric>

#include "common/logging.hh"

namespace abndp
{

KdTree::KdTree(const std::vector<float> &points, std::uint32_t leafSize)
{
    abndp_assert(points.size() % dims == 0);
    auto n = static_cast<std::uint32_t>(points.size() / dims);
    abndp_assert(n > 0 && leafSize > 0);
    std::vector<std::uint32_t> idx(n);
    std::iota(idx.begin(), idx.end(), 0);
    order.reserve(n);
    build(idx, 0, n, 0, points, leafSize);
}

std::uint32_t
KdTree::build(std::vector<std::uint32_t> &idx, std::uint32_t lo,
              std::uint32_t hi, std::uint32_t depth,
              const std::vector<float> &points, std::uint32_t leafSize)
{
    maxDepth = std::max(maxDepth, depth);
    auto me = static_cast<std::uint32_t>(tree.size());
    tree.emplace_back();

    if (hi - lo <= leafSize) {
        auto begin = static_cast<std::uint32_t>(order.size());
        for (std::uint32_t i = lo; i < hi; ++i)
            order.push_back(idx[i]);
        tree[me].begin = begin;
        tree[me].end = static_cast<std::uint32_t>(order.size());
        return me;
    }

    std::uint32_t dim = depth % dims;
    std::uint32_t mid = lo + (hi - lo) / 2;
    std::nth_element(idx.begin() + lo, idx.begin() + mid, idx.begin() + hi,
                     [&](std::uint32_t a, std::uint32_t b) {
                         float fa = points[a * dims + dim];
                         float fb = points[b * dims + dim];
                         return fa != fb ? fa < fb : a < b;
                     });
    float split = points[idx[mid] * dims + dim];

    std::uint32_t left = build(idx, lo, mid, depth + 1, points, leafSize);
    std::uint32_t right = build(idx, mid, hi, depth + 1, points, leafSize);
    tree[me].splitDim = dim;
    tree[me].splitVal = split;
    tree[me].left = left;
    tree[me].right = right;
    return me;
}

float
KdTree::boxDistance(const float *q, const float *lo, const float *hi)
{
    float d2 = 0.0f;
    for (std::uint32_t d = 0; d < dims; ++d) {
        float diff = 0.0f;
        if (q[d] < lo[d])
            diff = lo[d] - q[d];
        else if (q[d] > hi[d])
            diff = q[d] - hi[d];
        d2 += diff * diff;
    }
    return d2;
}

} // namespace abndp
