/**
 * @file
 * Key-value point lookups over a static B+-tree — the serving-mode
 * microbenchmark workload.
 *
 * The store holds a dense key space [0, numKeys) whose values are
 * derived from the seed by a mix function, so every lookup answer is
 * self-validating without materializing a reference table. The index
 * is a static fanout-8 B+-tree: one 64-byte node (8 keys x 8 B, one
 * cache line) per node, levels element-interleaved across NDP units.
 * A lookup task walks the root-to-leaf path, so its hint is exactly
 * the path's node lines — the shallowest, most uniform task shape in
 * the suite, which makes kv the cleanest probe of per-request serving
 * overhead and tail latency.
 *
 * Batch mode executes one bulk-synchronous epoch of independent
 * lookups (keys drawn from a seeded Rng). Serving mode draws keys from
 * the driver's Zipfian sampler over keySpace() == numKeys.
 */

#ifndef ABNDP_WORKLOADS_KVSTORE_HH
#define ABNDP_WORKLOADS_KVSTORE_HH

#include <cstdint>
#include <vector>

#include "workloads/query_service.hh"
#include "workloads/workload.hh"

namespace abndp
{

/** Point lookups over a static fanout-8 B+-tree. */
class KvStoreWorkload : public Workload, public QueryService
{
  public:
    /** Children per inner node / records per leaf (8 x 8 B = 1 line). */
    static constexpr std::uint32_t fanout = 8;

    /**
     * @param numKeys size of the dense key space
     * @param numLookups batch-mode lookups (one epoch, independent)
     */
    KvStoreWorkload(std::uint64_t numKeys, std::uint32_t numLookups,
                    std::uint64_t seed = 23);

    std::string name() const override { return "kv"; }
    void setup(SimAllocator &alloc) override;
    void emitInitialTasks(TaskSink &sink) override;
    void executeTask(const Task &task, TaskSink &sink) override;
    void endEpoch(std::uint64_t ts) override;
    bool verify() const override;

    // QueryService
    std::uint64_t keySpace() const override { return numKeys; }
    Task makeQueryTask(std::uint64_t key, std::uint64_t seq) override;
    bool verifyServed() const override;

    /** Levels of the tree, root = level 0, leaves = depth() - 1. */
    std::uint32_t depth() const
    {
        return static_cast<std::uint32_t>(levelSize.size());
    }

  private:
    /** The stored value of @p key (pure function of key and seed). */
    std::uint64_t valueOf(std::uint64_t key) const;

    /** Build the path-walk task answering @p key, with @p arg. */
    Task makeLookupTask(std::uint64_t key, std::uint64_t arg) const;

    std::uint64_t numKeys;
    std::uint32_t numLookups;
    std::uint64_t seed;

    /** Nodes per level, root first (levelSize[0] == 1). */
    std::vector<std::uint64_t> levelSize;
    /** Node addresses per level, root first. */
    std::vector<std::vector<Addr>> levelAddr;

    /** Batch-mode lookup keys and recorded answers. */
    std::vector<std::uint64_t> lookupKeys;
    std::vector<std::uint64_t> lookupAnswers;
    std::vector<bool> lookupDone;
    std::uint64_t epochsRun = 0;
};

} // namespace abndp

#endif // ABNDP_WORKLOADS_KVSTORE_HH
