/**
 * @file
 * Workload factory: builds any of the eight evaluation applications
 * (Section 6) from a size specification, with deterministic synthetic
 * inputs (see DESIGN.md substitutions).
 */

#ifndef ABNDP_WORKLOADS_FACTORY_HH
#define ABNDP_WORKLOADS_FACTORY_HH

#include <memory>
#include <string>
#include <vector>

#include "workloads/workload.hh"

namespace abndp
{

/** Input sizes for every workload (defaults = benchmark scale). */
struct WorkloadSpec
{
    /**
     * Which application: pr, bfs, sssp, astar, gcn, kmeans, knn, spmv,
     * or the extra serving microbenchmark kv.
     */
    std::string name = "pr";

    std::uint64_t seed = 42;

    // Graph applications (pr, bfs, sssp, astar, gcn, spmv): R-MAT
    // inputs, or a SNAP-style edge-list file when graphFile is set.
    std::uint32_t scale = 14;
    std::uint32_t edgeFactor = 16;
    std::string graphFile;
    /** Programmer-supplied hint.workload (vs scheduler estimation). */
    bool explicitLoadHints = false;

    // pr
    std::uint32_t prIters = 4;

    // gcn
    std::uint32_t gcnLayers = 2;

    // spmv
    std::uint32_t spmvIters = 3;

    // kmeans
    std::uint64_t kmeansPoints = 1ull << 16;
    std::uint32_t kmeansClusters = 16;
    std::uint32_t kmeansIters = 4;

    // knn
    std::uint32_t knnPoints = 1u << 16;
    std::uint32_t knnQueries = 4096;
    std::uint32_t knnK = 4;
    double knnHotFraction = 0.8;
    std::uint32_t knnLeafSize = 64;

    // astar (ALT-A* over the R-MAT graph)
    std::uint32_t astarQueries = 16;

    // kv (B+-tree point lookups; the serving-mode microbenchmark —
    // not part of the paper's Figure-6 suite)
    std::uint64_t kvKeys = 1ull << 16;
    std::uint32_t kvLookups = 4096;

    /** Reduced sizes for unit/integration tests. */
    static WorkloadSpec tiny(const std::string &name);
};

/** Instantiate a workload; fatal() on unknown names. */
std::unique_ptr<Workload> makeWorkload(const WorkloadSpec &spec);

/** The paper's benchmark suite, in Figure-6 order. */
const std::vector<std::string> &allWorkloadNames();

/** The Figure 8/9 representative subset: pr, bfs, gcn, knn, spmv. */
const std::vector<std::string> &representativeWorkloadNames();

} // namespace abndp

#endif // ABNDP_WORKLOADS_FACTORY_HH
