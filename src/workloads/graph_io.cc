#include "workloads/graph_io.hh"

#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace abndp
{

Graph
loadEdgeList(const std::string &path, bool undirected)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open graph file: ", path);

    std::vector<Graph::Edge> edges;
    std::uint32_t max_id = 0;
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        // SNAP headers use '#'; tolerate '%' (Matrix Market-ish) too.
        auto first = line.find_first_not_of(" \t\r");
        if (first == std::string::npos || line[first] == '#'
            || line[first] == '%')
            continue;
        std::istringstream iss(line);
        std::uint64_t src, dst;
        if (!(iss >> src >> dst))
            fatal("malformed edge at ", path, ":", lineno, ": '", line,
                  "'");
        if (src > 0xffffffffull || dst > 0xffffffffull)
            fatal("vertex id out of range at ", path, ":", lineno);
        edges.emplace_back(static_cast<std::uint32_t>(src),
                           static_cast<std::uint32_t>(dst));
        max_id = std::max(max_id,
                          static_cast<std::uint32_t>(std::max(src, dst)));
    }
    if (edges.empty())
        fatal("graph file has no edges: ", path);
    return Graph::fromEdges(max_id + 1, std::move(edges), undirected);
}

void
saveEdgeList(const Graph &graph, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot write graph file: ", path);
    out << "# abndp edge list: " << graph.numVertices() << " vertices, "
        << graph.numEdges() << " arcs\n";
    for (std::uint32_t v = 0; v < graph.numVertices(); ++v)
        for (std::uint32_t n : graph.neighbors(v))
            out << v << "\t" << n << "\n";
}

} // namespace abndp
