#include "workloads/factory.hh"

#include "common/logging.hh"
#include "workloads/astar.hh"
#include "workloads/bfs.hh"
#include "workloads/gcn.hh"
#include "workloads/graph_gen.hh"
#include "workloads/graph_io.hh"
#include "workloads/kmeans.hh"
#include "workloads/knn.hh"
#include "workloads/kvstore.hh"
#include "workloads/pagerank.hh"
#include "workloads/spmv.hh"
#include "workloads/sssp.hh"

namespace abndp
{

WorkloadSpec
WorkloadSpec::tiny(const std::string &name)
{
    WorkloadSpec s;
    s.name = name;
    s.scale = 9;
    s.edgeFactor = 8;
    s.prIters = 3;
    s.kmeansPoints = 2048;
    s.kmeansIters = 3;
    s.knnPoints = 2048;
    s.knnQueries = 128;
    s.astarQueries = 4;
    s.kvKeys = 2048;
    s.kvLookups = 256;
    return s;
}

namespace
{

Graph
specGraph(const WorkloadSpec &spec, bool undirected)
{
    if (!spec.graphFile.empty())
        return loadEdgeList(spec.graphFile, undirected);
    RmatParams p;
    p.scale = spec.scale;
    p.edgeFactor = spec.edgeFactor;
    p.seed = spec.seed;
    p.undirected = undirected;
    return makeRmatGraph(p);
}

} // namespace

std::unique_ptr<Workload>
makeWorkloadImpl(const WorkloadSpec &spec)
{
    if (spec.name == "pr")
        return std::make_unique<PageRankWorkload>(specGraph(spec, false),
                                                  spec.prIters);
    if (spec.name == "bfs")
        return std::make_unique<BfsWorkload>(specGraph(spec, true), 0);
    if (spec.name == "sssp")
        return std::make_unique<SsspWorkload>(specGraph(spec, true), 0,
                                              spec.seed);
    if (spec.name == "astar")
        return std::make_unique<AstarWorkload>(specGraph(spec, true),
                                               spec.astarQueries,
                                               spec.seed);
    if (spec.name == "gcn")
        return std::make_unique<GcnWorkload>(specGraph(spec, true),
                                             spec.gcnLayers, spec.seed);
    if (spec.name == "kmeans")
        return std::make_unique<KmeansWorkload>(spec.kmeansPoints,
                                                spec.kmeansClusters,
                                                spec.kmeansIters,
                                                spec.seed);
    if (spec.name == "knn")
        return std::make_unique<KnnWorkload>(spec.knnPoints,
                                             spec.knnQueries, spec.knnK,
                                             spec.knnHotFraction,
                                             spec.seed, spec.knnLeafSize);
    if (spec.name == "kv")
        return std::make_unique<KvStoreWorkload>(spec.kvKeys,
                                                 spec.kvLookups,
                                                 spec.seed);
    if (spec.name == "spmv")
        return std::make_unique<SpmvWorkload>(specGraph(spec, false),
                                              spec.spmvIters, spec.seed);
    fatal("unknown workload: ", spec.name);
}

std::unique_ptr<Workload>
makeWorkload(const WorkloadSpec &spec)
{
    auto wl = makeWorkloadImpl(spec);
    wl->setExplicitLoadHints(spec.explicitLoadHints);
    return wl;
}

const std::vector<std::string> &
allWorkloadNames()
{
    static const std::vector<std::string> names{
        "pr", "bfs", "sssp", "astar", "gcn", "kmeans", "knn", "spmv"};
    return names;
}

const std::vector<std::string> &
representativeWorkloadNames()
{
    static const std::vector<std::string> names{"pr", "bfs", "gcn", "knn",
                                                "spmv"};
    return names;
}

} // namespace abndp
