#include "workloads/graph_gen.hh"

#include "common/logging.hh"
#include "common/rng.hh"

namespace abndp
{

Graph
makeRmatGraph(const RmatParams &p)
{
    abndp_assert(p.a + p.b + p.c < 1.0, "bad R-MAT probabilities");
    std::uint32_t n = 1u << p.scale;
    std::uint64_t m = static_cast<std::uint64_t>(n) * p.edgeFactor;
    Rng rng(p.seed);

    std::vector<Graph::Edge> edges;
    edges.reserve(m);
    for (std::uint64_t e = 0; e < m; ++e) {
        std::uint32_t src = 0, dst = 0;
        for (std::uint32_t bit = 0; bit < p.scale; ++bit) {
            double r = rng.uniform();
            std::uint32_t quad;
            if (r < p.a)
                quad = 0;
            else if (r < p.a + p.b)
                quad = 1;
            else if (r < p.a + p.b + p.c)
                quad = 2;
            else
                quad = 3;
            src = (src << 1) | (quad >> 1);
            dst = (dst << 1) | (quad & 1);
        }
        edges.emplace_back(src, dst);
    }
    return Graph::fromEdges(n, std::move(edges), p.undirected);
}

Graph
makeUniformGraph(std::uint32_t numVertices, std::uint64_t numEdges,
                 std::uint64_t seed, bool undirected)
{
    Rng rng(seed);
    std::vector<Graph::Edge> edges;
    edges.reserve(numEdges);
    for (std::uint64_t e = 0; e < numEdges; ++e) {
        auto src = static_cast<std::uint32_t>(rng.below(numVertices));
        auto dst = static_cast<std::uint32_t>(rng.below(numVertices));
        edges.emplace_back(src, dst);
    }
    return Graph::fromEdges(numVertices, std::move(edges), undirected);
}

Graph
makeGridGraph(std::uint32_t width, std::uint32_t height)
{
    std::vector<Graph::Edge> edges;
    edges.reserve(static_cast<std::size_t>(width) * height * 2);
    auto id = [width](std::uint32_t x, std::uint32_t y) {
        return y * width + x;
    };
    for (std::uint32_t y = 0; y < height; ++y) {
        for (std::uint32_t x = 0; x < width; ++x) {
            if (x + 1 < width)
                edges.emplace_back(id(x, y), id(x + 1, y));
            if (y + 1 < height)
                edges.emplace_back(id(x, y), id(x, y + 1));
        }
    }
    return Graph::fromEdges(width * height, std::move(edges), true);
}

} // namespace abndp
